"""The distributed DataFrame: shuffle-backed sort and groupby.

Every shuffle-backed operator is a handful of lines over
:mod:`repro.shuffle` -- the point the paper makes about DataFrame engines
that instead rebuild shuffle internally.  Operators are lazy in the Ray
sense: they submit the task graph and return a new frame of refs
immediately; materialisation happens on ``collect``/``head``/``count``.

All methods that submit or fetch must be called from inside ``rt.run``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.futures import ObjectRef, Runtime
from repro.plan import JobShape, ShuffleExpr, ShufflePlan, planner_for_runtime
from repro.shuffle import push_based_shuffle, simple_shuffle
from repro.shuffle.common import worker_nodes
from repro.dataframe.block import FrameBlock, _agg_column_name

#: The variants the frame's operators are wired to execute: every
#: shuffle-backed method lowers its expression against this restriction,
#: so planning can never pick a variant the dataframe cannot run.
_FRAME_VARIANTS = ("simple", "push")


class DistributedFrame:
    """A table partitioned across the cluster as FrameBlock objects."""

    def __init__(
        self, rt: Runtime, partitions: List[ObjectRef], column_names: List[str]
    ) -> None:
        if not partitions:
            raise ValueError("a frame needs at least one partition")
        self.rt = rt
        self.partitions = list(partitions)
        self.column_names = list(column_names)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        rt: Runtime,
        data: Dict[str, np.ndarray],
        num_partitions: int,
    ) -> "DistributedFrame":
        """Distribute in-memory columns across the cluster (blocking)."""
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        whole = FrameBlock(data)
        pieces = np.array_split(np.arange(whole.num_rows), num_partitions)
        nodes = worker_nodes(rt)
        stage = rt.remote(lambda block: block)
        refs = [
            stage.options(node=nodes[i % len(nodes)]).remote(whole.take(piece))
            for i, piece in enumerate(pieces)
        ]
        rt.wait(refs, num_returns=len(refs))
        return cls(rt, refs, whole.column_names)

    # -- introspection ---------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def collect(self) -> FrameBlock:
        """Materialise the whole frame at the driver (blocking)."""
        return FrameBlock.concat(self.rt.get(self.partitions))

    def count(self) -> int:
        """Total row count (blocking)."""
        counter = self.rt.remote(lambda block: block.num_rows)
        return sum(self.rt.get([counter.remote(p) for p in self.partitions]))

    def head(self, n: int = 10) -> FrameBlock:
        """The first rows of the first partition (blocking)."""
        first = self.rt.get(self.partitions[0])
        return first.take(np.arange(min(n, first.num_rows)))

    def total_bytes(self) -> int:
        """Summed partition sizes in bytes (blocking)."""
        sizer = self.rt.remote(lambda block: block.size_bytes)
        return sum(self.rt.get([sizer.remote(p) for p in self.partitions]))

    # -- embarrassingly parallel operators -----------------------------------
    def map_partitions(
        self, fn: Callable[[FrameBlock], FrameBlock], column_names: Optional[List[str]] = None
    ) -> "DistributedFrame":
        """Apply ``fn`` to every partition independently (lazy)."""
        task = self.rt.remote(fn)
        refs = [task.remote(p) for p in self.partitions]
        return DistributedFrame(
            self.rt, refs, column_names or self.column_names
        )

    def filter(self, column: str, predicate: Callable[[np.ndarray], np.ndarray]) -> "DistributedFrame":
        """Keep rows where ``predicate(values)`` is True."""
        return self.map_partitions(
            lambda block: block.filter_rows(predicate(block[column]))
        )

    def with_column(
        self, name: str, fn: Callable[[FrameBlock], np.ndarray]
    ) -> "DistributedFrame":
        """Add a column computed per partition by ``fn(block)`` (lazy)."""
        new_names = self.column_names + ([name] if name not in self.column_names else [])
        return self.map_partitions(
            lambda block: block.with_column(name, fn(block)), new_names
        )

    # -- shuffle-backed operators ----------------------------------------------
    def sort_values(
        self, column: str, num_partitions: Optional[int] = None
    ) -> "DistributedFrame":
        """Globally sort by ``column`` via a range-partitioned shuffle."""
        out_parts = num_partitions or self.num_partitions
        bounds = self._sample_bounds(column, out_parts)

        def sort_map(block: FrameBlock) -> List[FrameBlock]:
            return [
                piece.sort_by(column)
                for piece in block.range_partition(column, bounds)
            ]

        def sort_reduce(*pieces: FrameBlock) -> FrameBlock:
            return FrameBlock.concat(list(pieces)).sort_by(column)

        refs = self._shuffle(sort_map, sort_reduce, out_parts)
        return DistributedFrame(self.rt, refs, self.column_names)

    def groupby_agg(
        self,
        key: str,
        aggregations: Dict[str, str],
        num_partitions: Optional[int] = None,
    ) -> "DistributedFrame":
        """Group by ``key`` with per-column aggregations.

        Map-side combining: each map pre-aggregates its partition before
        the shuffle, so only group summaries cross the network -- the
        classic combiner optimisation, expressed at the application
        level.  ``mean`` decomposes into sum + count.
        """
        if not aggregations:
            raise ValueError("groupby_agg needs at least one aggregation")
        out_parts = num_partitions or self.num_partitions
        plan: Dict[str, str] = {}
        finishers: List[tuple] = []
        for col, op in aggregations.items():
            if op == "mean":
                plan[col] = "sum"
                finishers.append((col, "mean"))
            elif op in ("sum", "min", "max", "count"):
                plan[col] = op
                finishers.append((col, op))
            else:
                raise ValueError(f"unsupported aggregation {op!r}")
        needs_count = any(op in ("mean", "count") for _, op in finishers)
        recombine = {
            _agg_column_name(col, op): op for col, op in plan.items()
        }
        # Row counts ride on the key column so they never collide with a
        # value column that is also being summed (e.g. for mean).
        count_source = key
        if needs_count:
            recombine[_agg_column_name(count_source, "count")] = "sum"

        def agg_map(block: FrameBlock) -> List[FrameBlock]:
            partial = block.groupby_agg(
                key,
                {**plan, **({count_source: "count"} if needs_count else {})},
            )
            return partial.hash_partition(key, out_parts)

        def agg_reduce(*pieces: FrameBlock) -> FrameBlock:
            merged = FrameBlock.concat(list(pieces))
            # Re-aggregate the partial results: sums add, mins min, ...
            relabelled = merged.groupby_agg(
                key,
                {name: ("sum" if op in ("sum",) else op) for name, op in recombine.items()},
            )
            # groupby_agg suffixes again; strip back to single suffix.
            out = {key: relabelled[key]}
            for name, op in recombine.items():
                out[name] = relabelled[
                    _agg_column_name(name, "sum" if op == "sum" else op)
                ]
            return FrameBlock(out)

        refs = self._shuffle(agg_map, agg_reduce, out_parts)
        final_names = self._finish_groupby(refs, key, finishers, plan, needs_count)
        return final_names

    def _finish_groupby(self, refs, key, finishers, plan, needs_count):
        count_name = _agg_column_name(key, "count")

        def finish(block: FrameBlock) -> FrameBlock:
            out: Dict[str, np.ndarray] = {key: block[key]}
            for col, op in finishers:
                if op == "mean":
                    sums = block[_agg_column_name(col, "sum")]
                    counts = block[count_name]
                    out[_agg_column_name(col, "mean")] = sums / np.maximum(counts, 1)
                elif op == "count":
                    out[_agg_column_name(col, "count")] = block[count_name]
                else:
                    out[_agg_column_name(col, op)] = block[
                        _agg_column_name(col, op)
                    ]
            return FrameBlock(out)

        task = self.rt.remote(finish)
        out_refs = [task.remote(r) for r in refs]
        names = [key] + [_agg_column_name(c, o) for c, o in finishers]
        return DistributedFrame(self.rt, out_refs, names)

    def join(
        self,
        other: "DistributedFrame",
        on: str,
        num_partitions: Optional[int] = None,
        suffix: str = "_right",
        broadcast: bool = False,
    ) -> "DistributedFrame":
        """Distributed inner equi-join: hash-shuffle both sides into
        aligned buckets, then join each bucket pair locally.

        Two shuffles plus a zip of the bucket columns -- the shape every
        shuffle-backed join engine uses, expressed in a dozen lines over
        the library.  With ``broadcast=True`` the right side is
        materialised whole and shipped to every left partition instead
        (no shuffle at all) -- the classic optimisation for small
        dimension tables.
        """
        if other.rt is not self.rt:
            raise ValueError("frames must share a runtime")
        if broadcast:
            whole_right = FrameBlock.concat(self.rt.get(other.partitions))
            joiner = self.rt.remote(
                lambda lb: lb.join(whole_right, on, suffix=suffix)
            )
            refs = [joiner.remote(p) for p in self.partitions]
            right_names = [
                name if name not in self.column_names else name + suffix
                for name in other.column_names
                if name != on
            ]
            return DistributedFrame(
                self.rt, refs, self.column_names + right_names
            )
        out_parts = num_partitions or max(
            self.num_partitions, other.num_partitions
        )

        def bucketise(block: FrameBlock) -> List[FrameBlock]:
            return block.hash_partition(on, out_parts)

        def gather(*pieces: FrameBlock) -> FrameBlock:
            return FrameBlock.concat(list(pieces))

        # One planned expression covers both sides: the join is a single
        # exchange of left+right bytes, so both shuffles execute the
        # variant one lowering chose (previously both were hardwired to
        # simple_shuffle regardless of size).
        plan = self._plan_shuffle(
            out_parts,
            label="join",
            total_bytes=self.total_bytes() + other.total_bytes(),
            num_maps=self.num_partitions + other.num_partitions,
        )
        left = self._run_shuffle(
            plan, self.partitions, bucketise, gather, out_parts
        )
        right = self._run_shuffle(
            plan, other.partitions, bucketise, gather, out_parts
        )
        joiner = self.rt.remote(
            lambda lb, rb: lb.join(rb, on, suffix=suffix)
        )
        refs = [joiner.remote(l, r) for l, r in zip(left, right)]
        right_names = [
            name if name not in self.column_names else name + suffix
            for name in other.column_names
            if name != on
        ]
        return DistributedFrame(
            self.rt, refs, self.column_names + right_names
        )

    def repartition(self, num_partitions: int) -> "DistributedFrame":
        """Rebalance rows into ``num_partitions`` even partitions."""
        if num_partitions < 1:
            raise ValueError("need at least one partition")

        def scatter(block: FrameBlock) -> List[FrameBlock]:
            pieces = np.array_split(np.arange(block.num_rows), num_partitions)
            return [block.take(piece) for piece in pieces]

        refs = self._shuffle(scatter, lambda *b: FrameBlock.concat(list(b)),
                             num_partitions, label="repartition")
        return DistributedFrame(self.rt, refs, self.column_names)

    # -- internals ----------------------------------------------------------
    def _plan_shuffle(
        self,
        num_reduces: int,
        label: str = "shuffle",
        total_bytes: Optional[int] = None,
        num_maps: Optional[int] = None,
    ) -> ShufflePlan:
        """Lower this frame's exchange through the plan surface (§7).

        Builds an abstract :class:`~repro.plan.ShuffleExpr` restricted
        to the variants the frame executes and lowers it through the
        runtime's planner -- by default with the empirical two-way rule
        this method historically hardcoded, so default-config choices
        are unchanged.
        """
        expr = ShuffleExpr(
            shape=JobShape(
                total_bytes=(
                    self.total_bytes() if total_bytes is None else total_bytes
                ),
                num_maps=(
                    self.num_partitions if num_maps is None else num_maps
                ),
                num_reduces=num_reduces,
            ),
            variants=_FRAME_VARIANTS,
            label=label,
        )
        return planner_for_runtime(self.rt).plan(
            expr, default_rule="empirical"
        )

    def _run_shuffle(
        self,
        plan: ShufflePlan,
        partitions: List[ObjectRef],
        map_fn: Callable[[FrameBlock], List[FrameBlock]],
        reduce_fn: Callable[..., FrameBlock],
        num_reduces: int,
    ) -> List[ObjectRef]:
        """Execute a lowered plan over ``partitions``."""
        if plan.variant == "simple":
            return simple_shuffle(
                self.rt, partitions, map_fn, reduce_fn, num_reduces
            )
        # push_based_shuffle needs a per-reducer merge; concat is correct
        # for any of our reduce functions since they re-reduce at the end.
        return push_based_shuffle(
            self.rt,
            partitions,
            map_fn,
            lambda *blocks: FrameBlock.concat(list(blocks)),
            reduce_fn,
            num_reduces,
        )

    def _shuffle(
        self,
        map_fn: Callable[[FrameBlock], List[FrameBlock]],
        reduce_fn: Callable[..., FrameBlock],
        num_reduces: int,
        label: str = "shuffle",
    ) -> List[ObjectRef]:
        """Plan and run the best shuffle for the frame's size (§7)."""
        plan = self._plan_shuffle(num_reduces, label=label)
        return self._run_shuffle(
            plan, self.partitions, map_fn, reduce_fn, num_reduces
        )

    def _sample_bounds(self, column: str, num_out: int) -> List[Any]:
        sampler = self.rt.remote(
            lambda block: block[column][:: max(1, block.num_rows // 50)].copy()
        )
        samples = np.concatenate(
            self.rt.get([sampler.remote(p) for p in self.partitions])
        )
        samples.sort()
        if samples.size == 0:
            return []
        bounds = [
            samples[samples.size * i // num_out] for i in range(1, num_out)
        ]
        # Strictly ascending for range_partition; collapse duplicates.
        out: List[Any] = []
        for bound in bounds:
            if not out or bound > out[-1]:
                out.append(bound)
        return out

    def __repr__(self) -> str:
        return (
            f"DistributedFrame(partitions={self.num_partitions}, "
            f"columns={self.column_names})"
        )
