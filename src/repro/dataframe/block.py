"""Column-oriented partition blocks for the distributed DataFrame."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np


class FrameBlock:
    """One partition: a dict of equally-long numpy columns."""

    __slots__ = ("columns",)

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("a frame block needs at least one column")
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.columns = {
            name: np.asarray(col) for name, col in columns.items()
        }

    # -- shape -----------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    @property
    def size_bytes(self) -> int:
        return int(sum(col.nbytes for col in self.columns.values()))

    def __getitem__(self, name: str) -> np.ndarray:
        return self.columns[name]

    # -- row-wise operations ----------------------------------------------------
    def take(self, row_indices: np.ndarray) -> "FrameBlock":
        """A new block with the given rows, in the given order."""
        return FrameBlock(
            {name: col[row_indices] for name, col in self.columns.items()}
        )

    def filter_rows(self, mask: np.ndarray) -> "FrameBlock":
        """Rows where ``mask`` is True."""
        return self.take(np.flatnonzero(mask))

    def sort_by(self, column: str) -> "FrameBlock":
        """Rows stably sorted by one column."""
        return self.take(np.argsort(self.columns[column], kind="stable"))

    def with_column(self, name: str, values: np.ndarray) -> "FrameBlock":
        """A new block with an added or replaced column."""
        if len(values) != self.num_rows:
            raise ValueError("new column length mismatch")
        merged = dict(self.columns)
        merged[name] = np.asarray(values)
        return FrameBlock(merged)

    # -- partitioning -------------------------------------------------------
    def range_partition(
        self, column: str, bounds: Sequence
    ) -> List["FrameBlock"]:
        """Split rows into ``len(bounds)+1`` blocks by ``column`` ranges."""
        buckets = np.searchsorted(np.asarray(bounds), self.columns[column], "right")
        return self._split_by_bucket(buckets, len(bounds) + 1)

    def hash_partition(self, column: str, num_buckets: int) -> List["FrameBlock"]:
        """Split rows by a deterministic hash of ``column``."""
        values = self.columns[column]
        if values.dtype.kind in ("i", "u"):
            hashed = values.astype(np.uint64)
        else:
            hashed = np.array(
                [hash(str(v)) & 0x7FFFFFFF for v in values], dtype=np.uint64
            )
        buckets = (hashed * np.uint64(2654435761)) % np.uint64(num_buckets)
        return self._split_by_bucket(buckets.astype(np.int64), num_buckets)

    def _split_by_bucket(
        self, buckets: np.ndarray, num_buckets: int
    ) -> List["FrameBlock"]:
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        splits = np.searchsorted(sorted_buckets, np.arange(1, num_buckets))
        pieces = np.split(order, splits)
        return [self.take(piece) for piece in pieces]

    # -- combination ------------------------------------------------------------
    @staticmethod
    def concat(blocks: Sequence["FrameBlock"]) -> "FrameBlock":
        if not blocks:
            raise ValueError("cannot concat zero blocks")
        names = blocks[0].column_names
        for block in blocks:
            if block.column_names != names:
                raise ValueError("schema mismatch in concat")
        return FrameBlock(
            {
                name: np.concatenate([block.columns[name] for block in blocks])
                for name in names
            }
        )

    # -- aggregation ----------------------------------------------------------
    _AGG_FNS: Dict[str, Callable] = {
        "sum": np.add.reduceat,
        "min": np.minimum.reduceat,
        "max": np.maximum.reduceat,
    }

    def groupby_agg(
        self, key: str, aggregations: Dict[str, str]
    ) -> "FrameBlock":
        """Group rows by ``key`` and aggregate value columns.

        Supported: sum, min, max, count, mean.  ``mean`` is decomposed
        into sum+count by the frame layer, so block-level aggregation only
        sees decomposable operations (required for map-side combining).
        """
        ordered = self.sort_by(key)
        keys = ordered.columns[key]
        if keys.size == 0:
            out = {key: keys}
            for col, op in aggregations.items():
                out[_agg_column_name(col, op)] = ordered.columns.get(
                    col, keys
                )[:0]
            return FrameBlock(out)
        starts = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
        out = {key: keys[starts]}
        for col, op in aggregations.items():
            if op == "count":
                ends = np.append(starts[1:], keys.size)
                out[_agg_column_name(col, op)] = ends - starts
            elif op in self._AGG_FNS:
                out[_agg_column_name(col, op)] = self._AGG_FNS[op](
                    ordered.columns[col], starts
                )
            else:
                raise ValueError(f"unsupported aggregation {op!r}")
        return FrameBlock(out)

    # -- joins --------------------------------------------------------------
    def join(
        self, other: "FrameBlock", on: str, suffix: str = "_right"
    ) -> "FrameBlock":
        """Inner equi-join on ``on``; one output row per matching pair.

        Right-side columns colliding with left names get ``suffix``.
        """
        left_keys = self.columns[on]
        right_sorted = other.sort_by(on)
        right_keys = right_sorted.columns[on]
        lo = np.searchsorted(right_keys, left_keys, side="left")
        hi = np.searchsorted(right_keys, left_keys, side="right")
        counts = hi - lo
        left_idx = np.repeat(np.arange(self.num_rows), counts)
        if left_idx.size:
            offsets = np.concatenate(
                [np.arange(c) + start for start, c in zip(lo, counts) if c]
            )
        else:
            offsets = np.array([], dtype=int)
        out: Dict[str, np.ndarray] = {}
        for name, col in self.columns.items():
            out[name] = col[left_idx]
        for name, col in right_sorted.columns.items():
            if name == on:
                continue
            out_name = name if name not in self.columns else name + suffix
            out[out_name] = col[offsets]
        if not out:
            raise ValueError("join produced no columns")
        return FrameBlock(out)

    def __repr__(self) -> str:
        return (
            f"FrameBlock(rows={self.num_rows}, "
            f"cols={self.column_names}, bytes={self.size_bytes})"
        )


def _agg_column_name(column: str, op: str) -> str:
    return f"{column}_{op}"
