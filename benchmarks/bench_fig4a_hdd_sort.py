"""Figure 4a: 1 TB sort on 10 HDD nodes, JCT vs number of partitions.

Scaled 10x (100 GB data, object stores scaled alike) on d3.2xlarge-like
nodes.  Paper shape to reproduce:

- ES-simple matches Spark at few partitions and degrades as partitions
  grow (quadratic block count: seeks + per-object metadata);
- ES-merge pays extra disk writes, losing at few partitions and closing
  in at many;
- ES-push / ES-push* stay flat and win at high partition counts;
- everything sits above the theoretical 4D/B disk bound;
- injected node failure (§5.1.5) adds recovery time for push variants.
"""

import pytest

from repro.cluster import ClusterSpec, FailurePlan
from repro.futures import RuntimeConfig
from repro.sort import theoretical_sort_seconds

from benchmarks._harness import (
    print_sort_figure_chart,
    SCALED_TB,
    column_by_variant,
    hdd_node,
    finish_bench,
    run_es_sort,
    sort_figure_table,
)

NUM_NODES = 10
PARTITIONS = [200, 400, 800]
VARIANTS = ["simple", "merge", "push", "push*"]


def _run_figure():
    node = hdd_node()
    table = sort_figure_table(
        "Fig 4a: 1 TB sort, 10 HDD nodes (scaled 10x)",
        node,
        NUM_NODES,
        SCALED_TB,
        PARTITIONS,
        VARIANTS,
        # Riffle-style merge task graphs (F x R arguments per merge) get
        # wall-clock expensive past 400 partitions; the trend is visible
        # by then.
        variant_max_partitions={"merge": 400},
    )
    theory = theoretical_sort_seconds(
        ClusterSpec.homogeneous(node, NUM_NODES), SCALED_TB
    )
    # The §5.1.5 failure runs (semi-shaded bars): one worker killed 30 s
    # (scaled: 3 s) into the job, restarted 10 s later.
    failure_rows = []
    for variant in ("push", "push*"):
        result, rt = run_es_sort(
            node,
            NUM_NODES,
            variant,
            400,
            SCALED_TB,
            failures=[FailurePlan(at_time=3.0, downtime=10.0, node_index=3)],
            runtime_config=RuntimeConfig(failure_detection_s=5.0),
        )
        failure_rows.append((variant, result.sort_seconds))
    return table, theory, failure_rows


@pytest.mark.benchmark(group="fig4a")
def test_fig4a_hdd_sort(benchmark):
    table, theory, failure_rows = benchmark.pedantic(
        _run_figure, rounds=1, iterations=1
    )
    clean = {v: column_by_variant(table, v) for v in VARIANTS + ["spark"]}
    extra = [f"theoretical 4D/B baseline: {theory:.1f}s"]
    for variant, seconds in failure_rows:
        extra.append(
            f"with injected failure: {variant} at 400 partitions: {seconds:.1f}s"
            f" (clean: {clean[variant][400]:.1f}s)"
        )
    finish_bench("fig4a_hdd_sort", table, benchmark=benchmark, extra_lines=extra)
    print_sort_figure_chart(table, 'Fig 4a shape (seconds by partitions)')

    # -- shape assertions -------------------------------------------------
    # ES-simple degrades with partition count (>= 1.5x from best to worst).
    simple = clean["simple"]
    assert simple[max(PARTITIONS)] > 1.5 * min(simple.values())
    # Push variants are insensitive to partition count (< 1.5x spread).
    for variant in ("push", "push*"):
        spread = clean[variant]
        assert max(spread.values()) < 1.5 * min(spread.values())
    # At high partition counts the push variants beat simple and Spark.
    high = max(PARTITIONS)
    assert clean["push*"][high] < simple[high]
    assert clean["push*"][high] < clean["spark"][high]
    # ES-merge pays extra writes at few partitions (slower than simple).
    low = min(PARTITIONS)
    assert clean["merge"][low] > simple[low]
    # Everything respects the disk-bound lower limit.
    for variant, per_parts in clean.items():
        for seconds in per_parts.values():
            assert seconds > theory * 0.95, (variant, seconds, theory)
    # Failure runs cost extra time but stay within ~recovery bounds.
    for variant, seconds in failure_rows:
        assert seconds > clean[variant][400]
