"""Figure 8: single-node ML training for 20 epochs (§5.2.2).

TabNet-on-HIGGS stands in as numpy SGD on a synthetic HIGGS-like dataset
(7.5 GB simulated volume) on one g4dn-like node.  Paper shape:

- the Exoshuffle-style loader (full per-epoch shuffle pipelined with
  training) is ~2.4x faster end-to-end than the Petastorm-style windowed
  loader (single decode-bound reader);
- it also converges to higher accuracy, because the window (9% of the
  data, the largest that avoids OOM) barely mixes a label-clustered
  storage order.
"""

import pytest

from repro.baselines.petastorm import PetastormLoader, windowed_shuffle_order
from repro.cluster import G4DN_4XLARGE
from repro.futures import Runtime
from repro.metrics import ResultTable
from repro.ml import (
    ExoshuffleLoader,
    SGDClassifier,
    SyntheticHiggs,
    train_single_node,
)
from repro.ml.loaders import stage_blocks

from benchmarks._harness import finish_bench

EPOCHS = 20
NUM_BLOCKS = 16
SIM_DATASET_BYTES = 7_500 * 10**6  # the HIGGS file: 7.5 GB


def _dataset() -> SyntheticHiggs:
    samples = 40_000
    raw = samples * (28 + 1) * 4
    return SyntheticHiggs(
        num_samples=samples, seed=4, noise=1.6, io_scale=SIM_DATASET_BYTES / raw
    )


def _run_exoshuffle(data, blocks):
    rt = Runtime.create(G4DN_4XLARGE, 1)
    refs = rt.run(lambda: stage_blocks(rt, blocks))
    loader = ExoshuffleLoader(rt, refs, seed=0)
    model = SGDClassifier(num_features=data.num_features, learning_rate=0.4, seed=0)
    return train_single_node(
        rt, loader, model, data.validation_set(), EPOCHS, label="exoshuffle"
    )


def _run_petastorm(data, blocks):
    rt = Runtime.create(G4DN_4XLARGE, 1)
    refs = rt.run(lambda: stage_blocks(rt, blocks))
    total = sum(b.size_bytes for b in blocks)
    loader = PetastormLoader(
        rt,
        refs,
        window_bytes=int(0.09 * total),  # the paper's 9%-of-data window
        buffer_budget_bytes=int(0.12 * total),
    )
    record_bytes = max(1, blocks[0].size_bytes // blocks[0].num_records)
    window_records = loader.window_records(record_bytes)

    def window_order(epoch):
        return list(
            windowed_shuffle_order(
                blocks, window_records, loader.epoch_rng(epoch), 2048
            )
        )

    model = SGDClassifier(num_features=data.num_features, learning_rate=0.4, seed=0)
    return train_single_node(
        rt, loader, model, data.validation_set(), EPOCHS,
        label="petastorm", order_override=window_order,
    )


def _run_figure():
    data = _dataset()
    blocks = data.training_blocks(NUM_BLOCKS)
    exo = _run_exoshuffle(data, blocks)
    pet = _run_petastorm(data, blocks)
    table = ResultTable(
        "Fig 8: single-node training, 20 epochs",
        ["loader", "total_seconds", "mean_epoch_s", "final_accuracy"],
    )
    for result in (exo, pet):
        table.add_row(
            loader=result.label,
            total_seconds=result.total_seconds,
            mean_epoch_s=result.mean_epoch_seconds,
            final_accuracy=result.final_accuracy,
        )
    return table, exo, pet


@pytest.mark.benchmark(group="fig8")
def test_fig8_single_node_training(benchmark):
    table, exo, pet = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    speedup = pet.total_seconds / exo.total_seconds
    finish_bench("fig8_ml_single_node", table, benchmark=benchmark, extra_lines=[f"end-to-end speedup: {speedup:.2f}x (paper: 2.4x)"])
    # Throughput: pipelined full shuffle is much faster end to end.
    assert speedup > 1.8
    # Convergence: full shuffle reaches higher accuracy...
    assert exo.final_accuracy > pet.final_accuracy
    # ...and reaches petastorm's final accuracy in fewer epochs.
    target = pet.final_accuracy
    exo_epochs_to_target = next(
        (i + 1 for i, acc in enumerate(exo.accuracies) if acc >= target),
        len(exo.accuracies),
    )
    assert exo_epochs_to_target < EPOCHS
