"""Adaptive mid-job re-planning under disk-seek-dominated chaos.

A static plan is only as good as the cluster it was lowered against.
This benchmark runs the same three-stage sort-style workload twice --
once per ``RuntimeConfig.replan`` arm -- with identical mid-run chaos:
after stage 1 completes, three of the four nodes depart and the
survivor's disk stalls (the churn + DISK_STALL recipe of the failure
matrix).  The 80 MB working set that fit the healthy cluster's
aggregate store is now external on one 64 MiB node, so stages 2-3 spill
everything; at 128 partitions the simple shuffle's ``M x R`` ~5 KB
blocks restore in scattered order and hit the seek wall (the Fig 7
access-pattern model), while push's merged runs restore near-
sequentially and its fewer tasks pipeline the stalled disk.

Both arms lower the same expression through :mod:`repro.plan` with the
empirical crossover rule (the ``select.py`` legacy: in-memory below 150
partitions -> simple) and pick ``simple`` on the healthy cluster.  The
static arm (``replan="off"``) keeps that plan to the end.  The adaptive
arm (``replan="on"``) re-lowers the remaining stages at the stage
boundary against the *effective* profile -- a fresh sample of the
shrunken membership -- and switches to ``push``.  The headline signals
are the causal ``plan.replan`` event (post-estimate beating the
pre-estimate) and the makespan split: the adaptive arm must finish no
later than the static arm.

Scale: 4 nodes with 64 MiB stores moving 80 MB per stage keeps the
data:aggregate-memory ratio healthy (~0.3) before the departures and
decidedly external (~1.2) after them -- the same crossover the 1 TB
externals hit at 1/SORT_SCALE size.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

import pytest

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.units import MB, MIB
from repro.futures import Runtime, RuntimeConfig
from repro.metrics import ResultTable
from repro.plan import JobShape, ShuffleExpr, planner_for_runtime
from repro.shuffle import push_based_shuffle, simple_shuffle
from repro.sort.datagen import generate_partitions
from repro.sort.job import MERGE_THROUGHPUT, SORT_THROUGHPUT
from repro.sort.ops import SortOps
from repro.sort.partitioner import uniform_bounds
from repro.sort.validate import validate_sorted_output

from benchmarks._harness import finish_bench, make_runtime

SEED = 11
JOB = "staged-sort"

NUM_NODES = 4
STORE_MIB = 64
STAGES = 3
PARTITIONS = 128
DATA_MB = 80

#: Worker nodes departing between stages 1 and 2 (the driver node stays).
DEPARTURES = 3
#: DISK_STALL severity applied to the survivors (chaos default).
STALL_FACTOR = 8.0


def _bench_node() -> NodeSpec:
    return NodeSpec(
        name="replan-bench-node",
        cores=4,
        memory_bytes=8 * 1024 * MIB,
        object_store_bytes=STORE_MIB * MIB,
        disk=DiskSpec(bandwidth_bytes_per_sec=200e6, seek_latency_s=5e-3),
        nic=NicSpec(bandwidth_bytes_per_sec=125e6),
    )


def _sort_cost(ctx: Any) -> float:
    return (ctx.input_bytes + ctx.output_bytes) / SORT_THROUGHPUT


def _merge_cost(ctx: Any) -> float:
    return (ctx.input_bytes + ctx.output_bytes) / MERGE_THROUGHPUT


def _run_stage(
    rt: Runtime, variant: str, parts: int, data_bytes: int, seed: int
) -> None:
    """One sort stage under ``variant``, validated, then freed.

    Mirrors :func:`repro.sort.job.run_sort`'s driver body, minus the
    nested ``rt.run`` (all stages share one driver so the planner sees
    one continuous run).  The push arm frees map bundles eagerly
    (the paper's ES-push*, §5.1.4) -- the single-intermediate-copy
    behaviour the cost model's disk term assumes.
    """
    partition_bytes = data_bytes // parts
    inputs = generate_partitions(
        rt, parts, partition_bytes, virtual=True, seed=seed
    )
    bounds = uniform_bounds(parts)
    ops = SortOps(bounds)
    expected_records = sum(rt.peek(ref).num_records for ref in inputs)
    expected_checksum = sum(rt.peek(ref).checksum() for ref in inputs) % 2**64
    map_options = {"compute": _sort_cost}
    reduce_options = {"compute": _merge_cost, "output_to_disk": True}
    if variant == "push":
        store_bytes = min(
            node.spec.object_store_bytes for node in rt.cluster.alive_nodes()
        )
        map_parallelism = max(1, min(8, store_bytes // (8 * partition_bytes)))
        out_refs = push_based_shuffle(
            rt, inputs, ops.map, ops.merge, ops.reduce, parts,
            map_parallelism=map_parallelism,
            free_map_outputs=True,
            map_options=map_options,
            merge_options={"compute": _merge_cost},
            reduce_options=reduce_options,
        )
    else:
        out_refs = simple_shuffle(
            rt, inputs, ops.map, ops.reduce, parts,
            map_options=map_options, reduce_options=reduce_options,
        )
    rt.wait(out_refs, num_returns=len(out_refs))
    validate_sorted_output(
        rt.get(out_refs), bounds, expected_records, expected_checksum
    )
    # Drop the stage's working set so the next stage starts from the
    # same store occupancy in both arms.
    rt.free(out_refs)
    rt.free(inputs)


def _degrade_cluster(rt: Runtime) -> None:
    """The mid-run chaos both arms see: departures + stalled disks."""
    node_ids = list(rt.cluster.node_ids)
    for victim in node_ids[-DEPARTURES:]:
        rt.remove_node(victim)
    for node in rt.cluster.alive_nodes():
        node.degrade_disk(1.0 / STALL_FACTOR)
        rt.bus.emit("chaos.fault", node=node.node_id, fault="disk_stall")


def run_staged_sort(
    replan: str,
    *,
    stages: int = STAGES,
    parts: int = PARTITIONS,
    data_mb: int = DATA_MB,
) -> Dict[str, Any]:
    """One arm: ``stages`` equal sorts with chaos after the first."""
    data_bytes = data_mb * MB
    rt = make_runtime(_bench_node(), NUM_NODES, config=RuntimeConfig(replan=replan))
    planner = planner_for_runtime(rt)
    shape = JobShape(total_bytes=data_bytes, num_maps=parts, num_reduces=parts)
    expr = ShuffleExpr(shape=shape, variants=("simple", "push"), label=JOB)
    plan = planner.plan(expr, default_rule="empirical", job=JOB)
    variants_run: List[str] = []

    def driver() -> None:
        nonlocal plan
        for stage in range(stages):
            if stage == 1:
                _degrade_cluster(rt)
            if stage > 0:
                revised = rt.stage_boundary(
                    "stage", plan=plan, remaining_shape=shape, job=JOB
                )
                if revised is not None:
                    plan = revised
            variants_run.append(plan.variant)
            _run_stage(rt, plan.variant, parts, data_bytes, seed=SEED + stage)

    rt.run(driver)
    replans = [e for e in rt.bus.events if e.kind == "plan.replan"]
    return {
        "replan": replan,
        "variants": "+".join(variants_run),
        "seconds": rt.env.now,
        "replans": len(replans),
        "est_before": replans[0].attrs["est_before"] if replans else None,
        "est_after": replans[0].attrs["est_after"] if replans else None,
        "spill_gb_written": rt.counters.get("spill_bytes_written") / 1e9,
    }


def _run_figure(
    stages: int = STAGES, parts: int = PARTITIONS, data_mb: int = DATA_MB
) -> ResultTable:
    table = ResultTable(
        "Adaptive re-planning: static vs re-lowered plan across chaos",
        [
            "replan", "variants", "seconds", "replans",
            "est_before", "est_after", "spill_gb_written",
        ],
    )
    for replan in ("off", "on"):
        table.add_row(
            **run_staged_sort(replan, stages=stages, parts=parts, data_mb=data_mb)
        )
    return table


def assert_replan_split(table: ResultTable) -> None:
    """The figure's claim: re-planning reacts and does not lose."""
    static = table.find(replan="off")
    adaptive = table.find(replan="on")
    assert static["replans"] == 0, "the off arm must never re-plan"
    assert "push" not in static["variants"], (
        "the static arm must keep its healthy-cluster plan"
    )
    assert adaptive["replans"] >= 1, (
        "the adaptive arm must re-lower at the degraded stage boundary"
    )
    assert "push" in adaptive["variants"], (
        "seek-dominated spilling must flip the remaining stages to push"
    )
    assert adaptive["est_after"] < adaptive["est_before"], (
        "a switch must be justified by a better post-estimate"
    )
    assert adaptive["seconds"] <= static["seconds"], (
        "the re-lowered plan must finish no later than the static one"
    )


@pytest.mark.benchmark(group="planning")
def test_adaptive_replan_beats_static(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("adaptive_replan", table, benchmark=benchmark)
    assert_replan_split(table)


def main(argv=None) -> int:
    """``python benchmarks/bench_adaptive_replan.py [--smoke]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-size run; exit nonzero unless the adaptive arm "
        "re-plans to push and finishes no later than the static arm",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        table = _run_figure(stages=2)
    else:
        table = _run_figure()
    print(table.render())
    try:
        assert_replan_split(table)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print("adaptive replan smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
