"""Ablations on the memory-management design choices (§4.3.1, §5.1.4).

1. Eager freeing of map bundles (ES-push* vs ES-push): dropping the
   references trades recovery redundancy for less write amplification --
   push* must write strictly fewer disk bytes.
2. Library-level backpressure (Listing 3's wait): with an effectively
   unbounded pipeline depth, map bundles pile up faster than merges drain
   them and spill traffic grows.
"""

import pytest

from repro.metrics import ResultTable

from benchmarks._harness import SCALED_TB, hdd_node, run_es_sort, finish_bench
from repro.futures import Runtime
from repro.cluster import ClusterSpec
from repro.sort import SortJobConfig, run_sort

NUM_NODES = 10
PARTITIONS = 400


def _run_variant(variant: str, pipeline_depth: int = 3):
    node = hdd_node()
    rt = Runtime(ClusterSpec.homogeneous(node, NUM_NODES))
    result = run_sort(
        rt,
        SortJobConfig(
            variant=variant,
            num_partitions=PARTITIONS,
            partition_bytes=SCALED_TB // PARTITIONS,
            virtual=True,
            pipeline_depth=pipeline_depth,
        ),
    )
    assert result.validated
    return result.sort_seconds, rt.counters.get("disk_bytes_written") / 1e9


def _run_figure():
    table = ResultTable(
        "Ablation: eager GC and backpressure (400 partitions)",
        ["config", "seconds", "disk_gb_written"],
    )
    for label, variant, depth in [
        ("push* (free bundles, depth 3)", "push*", 3),
        ("push (keep bundles, depth 3)", "push", 3),
        ("push* (no backpressure)", "push*", 1000),
    ]:
        seconds, written = _run_variant(variant, depth)
        table.add_row(config=label, seconds=seconds, disk_gb_written=written)
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_memory_management(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("ablation_memory", table, benchmark=benchmark)
    star = table.find(config="push* (free bundles, depth 3)")
    keep = table.find(config="push (keep bundles, depth 3)")
    unbounded = table.find(config="push* (no backpressure)")
    # Keeping bundle refs costs extra disk writes (durability tax).
    assert star["disk_gb_written"] < keep["disk_gb_written"]
    # Removing the wait-based backpressure costs extra spill traffic.
    assert star["disk_gb_written"] < unbounded["disk_gb_written"]
