"""Ablations on the memory-management design choices (§4.3.1, §5.1.4).

1. Eager freeing of map bundles (ES-push* vs ES-push): dropping the
   references trades recovery redundancy for less write amplification --
   push* must write strictly fewer disk bytes.
2. Library-level backpressure (Listing 3's wait): with an effectively
   unbounded pipeline depth, map bundles pile up faster than merges drain
   them and spill traffic grows.
3. Spill write fusing: the ``"unfused"`` spill policy from the
   ``repro.futures.policies`` registry writes one seek-paying file per
   object instead of fused >=100 MB files, so the same push* run cannot
   be faster than the fused default.

Every arm is a (variant, pipeline depth, spill-policy name) triple --
the spill behaviour is selected purely by registry name, with no
per-arm branching inside the data plane.
"""

import pytest

from repro.metrics import ResultTable

from benchmarks._harness import (
    SCALED_TB,
    hdd_node,
    finish_bench,
    make_runtime,
)
from repro.futures import RuntimeConfig
from repro.sort import SortJobConfig, run_sort

NUM_NODES = 10
PARTITIONS = 400

#: (table label, sort variant, pipeline depth, spill-policy name).
ARMS = [
    ("push* (free bundles, depth 3)", "push*", 3, "default"),
    ("push (keep bundles, depth 3)", "push", 3, "default"),
    ("push* (no backpressure)", "push*", 1000, "default"),
    ("push* (unfused spill)", "push*", 3, "unfused"),
]


def _run_variant(variant: str, pipeline_depth: int, spill_policy: str):
    rt = make_runtime(
        hdd_node(),
        NUM_NODES,
        config=RuntimeConfig(spill_policy=spill_policy),
    )
    result = run_sort(
        rt,
        SortJobConfig(
            variant=variant,
            num_partitions=PARTITIONS,
            partition_bytes=SCALED_TB // PARTITIONS,
            virtual=True,
            pipeline_depth=pipeline_depth,
        ),
    )
    assert result.validated
    return result.sort_seconds, rt.counters.get("disk_bytes_written") / 1e9


def _run_figure():
    table = ResultTable(
        "Ablation: eager GC, backpressure, write fusing (400 partitions)",
        ["config", "seconds", "disk_gb_written"],
    )
    for label, variant, depth, spill_policy in ARMS:
        seconds, written = _run_variant(variant, depth, spill_policy)
        table.add_row(config=label, seconds=seconds, disk_gb_written=written)
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_memory_management(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("ablation_memory", table, benchmark=benchmark)
    star = table.find(config="push* (free bundles, depth 3)")
    keep = table.find(config="push (keep bundles, depth 3)")
    unbounded = table.find(config="push* (no backpressure)")
    unfused = table.find(config="push* (unfused spill)")
    # Keeping bundle refs costs extra disk writes (durability tax).
    assert star["disk_gb_written"] < keep["disk_gb_written"]
    # Removing the wait-based backpressure costs extra spill traffic.
    assert star["disk_gb_written"] < unbounded["disk_gb_written"]
    # Seek-paying unfused spill files cannot beat fused writes.
    assert unfused["seconds"] >= star["seconds"]
