"""Recovery overhead per fault kind (chaos harness, beyond §5.1.5).

The paper's fault-tolerance figure reports one number: job completion
with and without a mid-run node failure.  The chaos harness generalizes
that to a matrix; this benchmark reports the recovery overhead (chaos
runtime over fault-free runtime) of the push shuffle for every fault
kind, and asserts the §5.1.5-style property that recovery completes with
correct output everywhere.
"""

import pytest

from repro.chaos import FaultKind, matrix_plan, run_chaos_shuffle
from repro.metrics import ResultTable

from benchmarks._harness import finish_bench

SEED = 2


def _run_figure():
    baseline = run_chaos_shuffle("push", None, seed=SEED)
    table = ResultTable(
        "Chaos matrix: push-shuffle recovery overhead by fault kind",
        ["fault", "seconds", "overhead_x", "retries", "correct"],
    )
    table.add_row(
        fault="none", seconds=baseline.duration, overhead_x=1.0,
        retries=0, correct=True,
    )
    for kind in FaultKind:
        report = run_chaos_shuffle("push", matrix_plan(kind, seed=SEED), seed=SEED)
        table.add_row(
            fault=kind.value,
            seconds=report.duration,
            overhead_x=report.duration / baseline.duration,
            retries=report.retries,
            correct=(
                report.output == baseline.output and not report.violations
            ),
        )
    return table


@pytest.mark.benchmark(group="chaos")
def test_chaos_matrix_recovery_overhead(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("chaos_matrix", table, benchmark=benchmark)
    assert all(row["correct"] for row in table.rows)
    crash = table.find(fault="node_crash")
    # A node crash costs real recovery time (detection + re-execution)...
    assert crash["overhead_x"] > 1.0
    # ...but recovery needs only a bounded handful of re-executions.
    assert 1 <= crash["retries"] <= 16
