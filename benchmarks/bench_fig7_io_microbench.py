"""Figure 7: small-I/O mitigations in the data plane (§5.3.2).

Single node with an sc1-like cold HDD and a deliberately small object
store.  A producer fleet creates several store-capacities' worth of small
objects (forcing spills), then a consumer fleet reads them all back.
Paper shape:

- with write fusing, total run time is nearly flat across object sizes;
- with fusing off, 1 MB objects are ~25% slower and 100 KB objects are
  many times slower (every object pays a seek);
- pipelined argument prefetching cuts run time substantially vs fetching
  arguments only once a core is held.
"""

import pytest

from repro.cluster import SC1_MICROBENCH
from repro.common.units import KB, MB, MIB
from repro.futures import RuntimeConfig
from repro.metrics import ResultTable

from benchmarks._harness import finish_bench, make_runtime

TOTAL_BYTES = 1000 * MB  # 16 GB : 1 GB in the paper, scaled 4x
STORE_BYTES = 256 * MIB
OBJECT_SIZES = [100 * KB, 333 * KB, 1000 * KB]


class _Blob:
    """A declared-size payload (content is irrelevant to the data plane)."""

    __slots__ = ("size_bytes",)

    def __init__(self, size_bytes: int) -> None:
        self.size_bytes = size_bytes


def _run_once(object_bytes: int, fusing: bool, prefetch: bool) -> float:
    config = RuntimeConfig(
        enable_write_fusing=fusing,
        enable_prefetching=prefetch,
        fuse_min_bytes=100 * MB,
        # One restore stream, as in the paper's single-process
        # microbenchmark: concurrent fetchers would interleave file
        # accesses and turn sequential restores into seek storms.
        prefetch_concurrency=1,
    )
    import dataclasses

    node = dataclasses.replace(SC1_MICROBENCH, cores=1).with_object_store(
        STORE_BYTES
    )
    # Via the harness so finish_bench can stamp the result (counters,
    # simulated time, fingerprint, critical path) from the last run.
    rt = make_runtime(node, 1, config=config)
    count = TOTAL_BYTES // object_bytes
    per_task = max(1, (32 * MB) // object_bytes)
    num_tasks = count // per_task

    def produce(n, size):
        for _ in range(n):
            yield _Blob(size)

    def consume(*blobs):
        return len(blobs)

    producer = rt.remote(produce, num_returns=per_task, compute=1e-3)
    # Consumer compute is sized near one batch's restore time so that
    # prefetching (restoring batch k+1 while batch k computes) has
    # something to overlap.
    consumer = rt.remote(consume, compute=0.3)

    def driver():
        created = [
            producer.remote(per_task, object_bytes) for _ in range(num_tasks)
        ]
        flat = [ref for refs in created for ref in refs]
        rt.wait(flat, num_returns=len(flat))
        consumed = [
            consumer.remote(*flat[i : i + per_task])
            for i in range(0, len(flat), per_task)
        ]
        rt.wait(consumed, num_returns=len(consumed))
        return None

    rt.run(driver)
    return rt.now


def _run_figure():
    table = ResultTable(
        "Fig 7: spill/restore microbenchmark on sc1-like HDD",
        ["object_kb", "fusing", "prefetch", "seconds"],
    )
    for size in OBJECT_SIZES:
        for fusing in (True, False):
            seconds = _run_once(size, fusing=fusing, prefetch=True)
            table.add_row(
                object_kb=size // KB, fusing=fusing, prefetch=True,
                seconds=seconds,
            )
    # Prefetch ablation at one size (fusing on).
    table.add_row(
        object_kb=333, fusing=True, prefetch=False,
        seconds=_run_once(333 * KB, fusing=True, prefetch=False),
    )
    return table


@pytest.mark.benchmark(group="fig7")
def test_fig7_io_mitigations(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig7_io_microbench", table, benchmark=benchmark)

    def cell(object_kb, fusing, prefetch=True):
        return table.find(object_kb=object_kb, fusing=fusing, prefetch=prefetch)[
            "seconds"
        ]

    # Fusing keeps run time nearly flat across object sizes.
    fused = [cell(s // KB, True) for s in OBJECT_SIZES]
    assert max(fused) < 1.5 * min(fused)
    # Without fusing, small objects collapse into the seek wall.
    assert cell(100, False) > 3.0 * cell(100, True)
    # ... and even 1 MB objects pay a visible penalty.
    assert cell(1000, False) > 1.15 * cell(1000, True)
    # The penalty grows as objects shrink.
    assert cell(100, False) > cell(333, False) > cell(1000, False)
    # Prefetching overlaps restores with execution (paper: 60-80% saved).
    assert cell(333, True, prefetch=False) > 1.3 * cell(333, True, prefetch=True)
