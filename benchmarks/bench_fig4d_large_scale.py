"""Figure 4d: the 100 TB sort on 100 HDD nodes.

Scaled to 20 nodes and 5x-aggregate-memory data with partition:store
ratio ~0.1, matching the paper's 2 GB partitions against 19 GiB stores.
Spark runs with compression on (the paper does, because Spark without it
is unstable at scale), which cuts its intermediate bytes by 40%.

Paper shape: Spark-push beats native Spark (~1.6x) by eliminating random
reads; ES-push* beats Spark-push (~1.8x) by eliminating the second copy
of the intermediate data (Spark-push spills both un-merged and merged map
outputs; ES-push* spills only the merged ones).
"""

import pytest

from repro.cluster import ClusterSpec
from repro.common.units import GB
from repro.metrics import ResultTable
from repro.sort import theoretical_sort_seconds

from benchmarks._harness import hdd_node, finish_bench, run_es_sort, run_spark_sort_on

NUM_NODES = 20
PARTITIONS = 1000


def _run_figure():
    node = hdd_node()
    data_bytes = int(5.3 * node.object_store_bytes * NUM_NODES)
    table = ResultTable(
        "Fig 4d: 100 TB sort, 100 HDD nodes (scaled: 20 nodes)",
        ["system", "seconds", "intermediate_writes_gb"],
    )
    es_result, rt = run_es_sort(node, NUM_NODES, "push*", PARTITIONS, data_bytes)
    # Intermediate writes = spill traffic during the sort (excludes the
    # untimed datagen phase's input materialisation and the final output).
    datagen_spill = data_bytes / GB  # input fully spills during datagen
    table.add_row(
        system="exoshuffle (push*)",
        seconds=es_result.sort_seconds,
        intermediate_writes_gb=max(
            0.0, rt.counters.get("spill_bytes_written") / GB - datagen_spill
        ),
    )
    spark_push = run_spark_sort_on(
        node, NUM_NODES, PARTITIONS, data_bytes, push_based=True, compression=True
    )
    table.add_row(
        system="spark-push",
        seconds=spark_push.sort_seconds,
        intermediate_writes_gb=(
            spark_push.stats["shuffle_bytes_written"]
            + spark_push.stats["merged_bytes_written"]
        )
        / GB,
    )
    spark = run_spark_sort_on(
        node, NUM_NODES, PARTITIONS, data_bytes, compression=True
    )
    table.add_row(
        system="spark",
        seconds=spark.sort_seconds,
        intermediate_writes_gb=spark.stats["shuffle_bytes_written"] / GB,
    )
    theory = theoretical_sort_seconds(
        ClusterSpec.homogeneous(node, NUM_NODES), data_bytes
    )
    return table, theory


@pytest.mark.benchmark(group="fig4d")
def test_fig4d_large_scale_sort(benchmark):
    table, theory = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig4d_large_scale", table, benchmark=benchmark, extra_lines=[f"theoretical 4D/B baseline: {theory:.1f}s"])
    seconds = {row["system"]: row["seconds"] for row in table.rows}
    # The ordering of the three bars.
    assert seconds["exoshuffle (push*)"] < seconds["spark-push"] < seconds["spark"]
    # Spark-push improves on native Spark materially (paper: 1.6x).
    assert seconds["spark"] / seconds["spark-push"] > 1.2
    # ES-push* beats Spark-push.  Known deviation (see EXPERIMENTS.md):
    # the paper measures 1.8x, our simulated Spark engine lacks further
    # JVM-era inefficiencies and lands nearer 1.1-1.2x.
    assert seconds["spark-push"] / seconds["exoshuffle (push*)"] > 1.1
