"""Shuffle durability under cluster churn: local vs shared spill tier.

The paper's fault-tolerance experiments (§5.1.5) recover lost shuffle
blocks by lineage re-execution because spilled bytes live on the dead
node's local disk.  A disaggregated spill tier changes that trade: map
outputs spilled through the shared store survive a planned node
departure, so reduces restore them instead of re-running maps.

This benchmark runs the same map/shuffle/reduce workload twice -- once
per ``RuntimeConfig.spill_backend`` arm -- with identical churn: after
every map output has been forced out to the spill tier, one worker node
is removed and a fresh node joins.  The headline signal is the
``lineage_reconstructions`` counter: the local-disk arm must re-execute
the departed node's maps (> 0) while the shared-store arm completes
with zero recomputes of spilled map outputs.

Scale: a 4-node cluster with 32 MiB object stores moving 8 MiB map
blocks keeps the block:store ratio (~1:4) that forces spilling, the
same pressure shape as the 1 TB externals at 1/SORT_SCALE size.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

import numpy as np
import pytest

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.units import MB, MIB
from repro.futures import RuntimeConfig
from repro.metrics import ResultTable

from benchmarks._harness import finish_bench, make_runtime

SEED = 3

#: Maps per worker node; each produces one BLOB_MB block.
MAPS_PER_NODE = 6
BLOB_MB = 8
NUM_NODES = 4
STORE_MIB = 32


def _churn_node() -> NodeSpec:
    return NodeSpec(
        name="elastic-bench-node",
        cores=4,
        memory_bytes=8 * 1024 * MIB,
        object_store_bytes=STORE_MIB * MIB,
        disk=DiskSpec(bandwidth_bytes_per_sec=200e6, seek_latency_s=5e-3),
        nic=NicSpec(bandwidth_bytes_per_sec=125e6),
    )


def run_churn_shuffle(spill_backend: str, *, join: bool = True,
                      maps_per_node: int = MAPS_PER_NODE) -> Dict[str, Any]:
    """One churn run; returns metrics keyed for the figure table.

    Shape: maps pinned round-robin across all nodes produce blocks that
    overflow the store (spilling), a per-node flush task evicts the
    stragglers still in memory, the last worker node departs (and a
    replacement joins), then reduces consume every block.
    """
    config = RuntimeConfig(spill_backend=spill_backend)
    rt = make_runtime(_churn_node(), NUM_NODES, config=config)
    node_ids = list(rt.cluster.node_ids)
    victim = node_ids[-1]
    num_maps = maps_per_node * NUM_NODES

    def map_block(i):
        # Deterministic content so reconstructed blocks checksum the same.
        return np.full(BLOB_MB * MB, i % 251, dtype=np.uint8)

    def flush(_i):
        # Output sized so admitting it forces every unpinned map block
        # out of the store: 30 MB into a 32 MiB store leaves < 8 MB free.
        return np.zeros(30 * MB, dtype=np.uint8)

    def reduce_pair(a, b):
        return int(a[0]) + int(b[0]) + len(a) + len(b)

    make = rt.remote(map_block)
    flusher = rt.remote(flush)
    reducer = rt.remote(reduce_pair)

    def driver():
        map_refs = [
            make.options(node=node_ids[i % NUM_NODES]).remote(i)
            for i in range(num_maps)
        ]
        rt.wait(map_refs, num_returns=len(map_refs))
        flush_refs = [
            flusher.options(node=nid).remote(k)
            for k, nid in enumerate(node_ids)
        ]
        rt.wait(flush_refs, num_returns=len(flush_refs))
        rt.free(flush_refs)
        # Planned departure after every map block reached the spill tier;
        # under churn a replacement immediately joins.
        rt.remove_node(victim)
        if join:
            rt.add_node()
        reduce_refs = [
            reducer.remote(map_refs[2 * r], map_refs[2 * r + 1])
            for r in range(num_maps // 2)
        ]
        return rt.get(reduce_refs)

    results = driver_results = rt.run(driver)
    expected = [
        (2 * r) % 251 + (2 * r + 1) % 251 + 2 * BLOB_MB * MB
        for r in range(num_maps // 2)
    ]
    return {
        "backend": spill_backend,
        "seconds": rt.env.now,
        "reconstructions": rt.counters.get("lineage_reconstructions"),
        "resubmitted": rt.counters.get("tasks_resubmitted"),
        "shared_gb_read": rt.counters.get("shared_bytes_read") / 1e9,
        "spill_gb_written": rt.counters.get("spill_bytes_written") / 1e9,
        "correct": results == expected,
        "runtime": rt,
        "results": driver_results,
    }


def _run_figure(maps_per_node: int = MAPS_PER_NODE):
    table = ResultTable(
        "Elastic churn: spill-tier durability across a planned departure",
        [
            "backend", "seconds", "reconstructions", "resubmitted",
            "shared_gb_read", "spill_gb_written", "correct",
        ],
    )
    for backend in ("local", "shared"):
        metrics = run_churn_shuffle(backend, maps_per_node=maps_per_node)
        metrics.pop("runtime")
        metrics.pop("results")
        table.add_row(**metrics)
    return table


def assert_durability_split(table: ResultTable) -> None:
    """The figure's claim: shared tier zeroes out churn recomputes."""
    local = table.find(backend="local")
    shared = table.find(backend="shared")
    assert local["correct"] and shared["correct"]
    assert local["reconstructions"] > 0, (
        "local-disk arm lost spilled blocks with the node; expected "
        "lineage recomputes"
    )
    assert shared["reconstructions"] == 0, (
        "shared-store arm must restore spilled blocks without recompute"
    )
    assert shared["shared_gb_read"] > 0


@pytest.mark.benchmark(group="elasticity")
def test_elastic_churn_durability(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("elastic_churn", table, benchmark=benchmark)
    assert_durability_split(table)


def main(argv=None) -> int:
    """``python benchmarks/bench_elastic_churn.py [--smoke]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced-size run; exit nonzero unless the shared arm shows "
        "zero lineage recomputes and the local arm shows > 0",
    )
    args = parser.parse_args(argv)
    maps = 3 if args.smoke else MAPS_PER_NODE
    table = _run_figure(maps_per_node=maps)
    print(table.render())
    try:
        assert_durability_split(table)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print("elastic churn smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
