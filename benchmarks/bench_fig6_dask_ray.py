"""Figure 6: shuffle on Dask vs a shared-memory-store backend (§5.3.1).

Single fat node (32 vCPUs, 244 GB), DataFrame-style sort at 100
partitions across growing data sizes.  Paper shape:

- Dask multithreading ~3x slower than Dask-on-Ray on small data (GIL);
- Dask multiprocessing matches on small data but *fails* (OOM) on large
  data due to inter-process object copies;
- the Ray-style shared-memory store completes every size (spilling when
  needed), fastest or tied throughout.
"""

import pytest

from repro.baselines.dask import DaskConfig, run_dask_sort
from repro.cluster import LOCAL_32CPU
from repro.common.units import GB
from repro.futures import Runtime
from repro.metrics import ResultTable
from repro.sort import SortJobConfig, run_sort

from benchmarks._harness import finish_bench

DATA_SIZES = [20 * GB, 60 * GB, 120 * GB, 200 * GB]
NUM_PARTITIONS = 100

DASK_CONFIGS = [
    DaskConfig(processes=32, threads_per_process=1),
    DaskConfig(processes=8, threads_per_process=4),
    DaskConfig(processes=1, threads_per_process=32),
]


def _ray_sort_seconds(data_bytes: int) -> float:
    rt = Runtime.create(LOCAL_32CPU, 1)
    result = run_sort(
        rt,
        SortJobConfig(
            variant="simple",
            num_partitions=NUM_PARTITIONS,
            partition_bytes=data_bytes // NUM_PARTITIONS,
            virtual=True,
            output_to_disk=False,
        ),
    )
    return result.sort_seconds


def _run_figure():
    table = ResultTable(
        "Fig 6: Dask configs vs shared-memory store, single 32-vCPU node",
        ["backend", "data_gb", "seconds", "oom"],
    )
    for data in DATA_SIZES:
        for config in DASK_CONFIGS:
            result = run_dask_sort(config, data, NUM_PARTITIONS)
            table.add_row(
                backend=f"dask {config.label}",
                data_gb=data // GB,
                seconds=result.seconds,
                oom=result.oom,
            )
        table.add_row(
            backend="dask-on-ray",
            data_gb=data // GB,
            seconds=_ray_sort_seconds(data),
            oom=False,
        )
    return table


@pytest.mark.benchmark(group="fig6")
def test_fig6_dask_vs_ray(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig6_dask_ray", table, benchmark=benchmark)

    def cell(backend, data_gb):
        return table.find(backend=backend, data_gb=data_gb)

    small, large = DATA_SIZES[0] // GB, DATA_SIZES[-1] // GB
    # Threads: GIL-bound, ~3x slower than the shared store on small data.
    assert (
        cell("dask 1p x 32t", small)["seconds"]
        > 2.0 * cell("dask-on-ray", small)["seconds"]
    )
    # Processes: competitive on small data...
    assert (
        cell("dask 32p x 1t", small)["seconds"]
        < 2.0 * cell("dask-on-ray", small)["seconds"]
    )
    # ...but OOM on the largest size, while the shared store survives.
    assert cell("dask 32p x 1t", large)["oom"]
    for data in DATA_SIZES:
        row = cell("dask-on-ray", data // GB)
        assert not row["oom"] and row["seconds"] > 0
