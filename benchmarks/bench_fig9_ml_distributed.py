"""Figure 9: 4-node distributed training, full vs partial shuffle (§5.2.2).

Four g4dn-like trainer nodes, data-parallel SGD with parameter averaging
per epoch.  Paper shape: per-epoch time is slightly *faster* with partial
(fully local) shuffle, but convergence accuracy is lower because training
batches stay label-biased; full shuffle pays a little data movement for
better final accuracy.
"""

import pytest

from repro.cluster import G4DN_4XLARGE
from repro.futures import Runtime
from repro.metrics import ResultTable
from repro.ml import (
    ExoshuffleLoader,
    LocalBatchLoader,
    SGDClassifier,
    SyntheticHiggs,
    train_distributed,
)
from repro.ml.loaders import stage_blocks

from benchmarks._harness import finish_bench

EPOCHS = 20
NUM_NODES = 4
NUM_BLOCKS = 16
SIM_DATASET_BYTES = 7_500 * 10**6


def _dataset() -> SyntheticHiggs:
    samples = 40_000
    raw = samples * (28 + 1) * 4
    return SyntheticHiggs(
        num_samples=samples, seed=9, noise=1.6, io_scale=SIM_DATASET_BYTES / raw
    )


def _run(loader_cls, label):
    data = _dataset()
    blocks = data.training_blocks(NUM_BLOCKS)
    rt = Runtime.create(G4DN_4XLARGE, NUM_NODES)
    refs = rt.run(lambda: stage_blocks(rt, blocks))
    loader = loader_cls(rt, refs, seed=0)
    model = SGDClassifier(num_features=data.num_features, learning_rate=0.4, seed=0)
    return train_distributed(
        rt, loader, model, data.validation_set(), EPOCHS,
        trainer_nodes=rt.cluster.node_ids, label=label,
    )


def _run_figure():
    full = _run(ExoshuffleLoader, "full shuffle")
    partial = _run(LocalBatchLoader, "partial shuffle")
    table = ResultTable(
        "Fig 9: 4-node distributed training, 20 epochs",
        ["strategy", "mean_epoch_s", "total_seconds", "final_accuracy"],
    )
    for result in (full, partial):
        table.add_row(
            strategy=result.label,
            mean_epoch_s=result.mean_epoch_seconds,
            total_seconds=result.total_seconds,
            final_accuracy=result.final_accuracy,
        )
    return table, full, partial


@pytest.mark.benchmark(group="fig9")
def test_fig9_distributed_training(benchmark):
    table, full, partial = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig9_ml_distributed", table, benchmark=benchmark)
    # Partial shuffle is fully local: per-epoch time no slower than full.
    assert partial.mean_epoch_seconds <= full.mean_epoch_seconds * 1.05
    # Full shuffle converges to (slightly) higher accuracy.
    assert full.final_accuracy > partial.final_accuracy
    # Both still learn something real.
    assert partial.final_accuracy > 0.6
