"""Ablation: locality-aware scheduling and soft node affinity (§4.3.2).

The push shuffle pins merge tasks per worker and relies on locality for
the reduce stage.  Each arm is a named placement policy from the
``repro.futures.policies`` registry -- ``"default"`` composes the
blacklist / affinity / locality / least-loaded stages, ``"load-only"``
places purely by load -- so no per-arm branching reaches the data
plane.  Under load-only placement, merged blocks end up remote from
their reducers and extra bytes cross the network, slowing the job.
"""

import pytest

from repro.futures import RuntimeConfig
from repro.metrics import ResultTable

from benchmarks._harness import SCALED_TB, hdd_node, finish_bench, run_es_sort

NUM_NODES = 10
PARTITIONS = 200

#: (table label, placement-policy registry name) per ablation arm.
ARMS = [
    ("locality+affinity", "default"),
    ("load-only", "load-only"),
]


def _run_once(placement_policy: str):
    config = RuntimeConfig(placement_policy=placement_policy)
    result, rt = run_es_sort(
        hdd_node(), NUM_NODES, "push*", PARTITIONS, SCALED_TB,
        runtime_config=config,
    )
    return result.sort_seconds, rt.cluster.network_bytes_sent


def _run_figure():
    table = ResultTable(
        "Ablation: locality + affinity scheduling (push*, 200 partitions)",
        ["scheduling", "seconds", "network_gb"],
    )
    for label, policy in ARMS:
        seconds, net = _run_once(policy)
        table.add_row(
            scheduling=label,
            seconds=seconds,
            network_gb=net / 1e9,
        )
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_locality_scheduling(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("ablation_scheduling", table, benchmark=benchmark)
    with_locality = table.find(scheduling="locality+affinity")
    without = table.find(scheduling="load-only")
    # Locality keeps bytes off the network and the job faster.
    assert with_locality["network_gb"] < without["network_gb"]
    assert with_locality["seconds"] < without["seconds"]
