"""Figure 5: online aggregation with streaming shuffle (§5.2.1).

Scaled pageviews aggregation (Zipf page popularity, hourly blocks) on 10
r6i-like nodes.  Paper shape:

- streaming shuffle's *total* run time exceeds the regular shuffle's (the
  paper measures 1.4x) because of the per-round partial-result work;
- but a partial aggregate within 8% error of the final answer appears a
  large factor earlier than the regular shuffle's only (final) answer
  (the paper measures 22x).
"""

import pytest

from repro.aggregation import run_online_aggregation
from repro.cluster import R6I_2XLARGE
from repro.futures import Runtime
from repro.metrics import ResultTable
from repro.workloads import PageviewDataset

from benchmarks._harness import finish_bench, scaled_node

NUM_NODES = 10
NUM_REDUCES = 8


def _dataset() -> PageviewDataset:
    # 1 TB / 6 months scaled: ~34 GB over 168 "hours".
    return PageviewDataset(
        num_hours=168,
        languages=8,
        pages_per_language=400,
        block_bytes=200 * 10**6,
        views_per_hour=400_000,
        seed=11,
    )


def _run_figure():
    node = scaled_node(R6I_2XLARGE).with_object_store(
        scaled_node(R6I_2XLARGE).object_store_bytes * 4
    )  # data streams from S3 into memory; keep the store comfortable
    data = _dataset()
    results = {}
    for mode in ("batch", "streaming"):
        rt = Runtime.create(node, NUM_NODES)
        results[mode] = run_online_aggregation(
            rt, data, num_reduces=NUM_REDUCES, mode=mode, hours_per_round=12
        )
    table = ResultTable(
        "Fig 5: online aggregation, 10 r6i nodes (scaled)",
        ["mode", "total_seconds", "time_to_8pct_error", "final_error"],
    )
    for mode, result in results.items():
        table.add_row(
            mode=mode,
            total_seconds=result.total_seconds,
            time_to_8pct_error=result.first_time_within(0.08),
            final_error=result.final_error,
        )
    return table, results


@pytest.mark.benchmark(group="fig5")
def test_fig5_online_aggregation(benchmark):
    table, results = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    batch, stream = results["batch"], results["streaming"]
    speedup = batch.first_time_within(0.08) / stream.first_time_within(0.08)
    finish_bench(
        "fig5_online_agg",
        table,
        benchmark=benchmark,
        extra_lines=
        [
            f"partial-result speedup at 8% error: {speedup:.1f}x "
            f"(paper: 22x)",
            f"streaming total / batch total: "
            f"{stream.total_seconds / batch.total_seconds:.2f}x (paper: 1.4x)",
        ],
    )
    from repro.metrics.ascii_charts import line_chart

    print()
    print(
        line_chart(
            "Fig 5 shape: partial-result error over time",
            {
                "streaming": stream.error_series.samples,
                "batch (final only)": batch.error_series.samples,
            },
        )
    )
    # Streaming trades total time for early partials.
    assert stream.total_seconds > batch.total_seconds
    assert stream.total_seconds < 2.5 * batch.total_seconds
    # The 8%-error partial arrives far earlier than batch's only answer.
    assert speedup > 4.0
    # Both converge to the exact final ranking.
    assert batch.final_error < 1e-6
    assert stream.final_error < 1e-6
    # Error decreases monotonically-ish over rounds (first > last).
    errors = stream.error_series.values
    assert errors[0] > errors[-1]
