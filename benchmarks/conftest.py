"""Benchmark-suite pytest hooks: ``--trace-dir PATH``, ``--live-html``,
and ``--profile``.

``pytest benchmarks/ --trace-dir out/`` makes every figure benchmark export
its observability record (``<name>.events.jsonl`` + ``<name>.trace.json``
Chrome trace) and its ``BENCH_<name>.json`` result file into ``PATH``
via :func:`benchmarks._harness.finish_bench`.  Adding ``--live-html``
also writes a self-contained ``<name>.explorer.html`` run explorer per
benchmark (the artifact CI attaches to the perf gate).  Without
``--trace-dir``, JSON results land in the working directory and trace
export is skipped.
"""

import pytest

from benchmarks import _harness


def pytest_addoption(parser):
    """Register ``--trace-dir PATH`` and ``--live-html`` for the suite."""
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        metavar="PATH",
        help="directory to write observability traces and BENCH_*.json "
        "result files into",
    )
    parser.addoption(
        "--live-html",
        action="store_true",
        default=False,
        help="also export a self-contained <name>.explorer.html run "
        "explorer per benchmark (requires --trace-dir)",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="attach the self-profiler to every benchmark runtime: "
        "stamps a profile section (throughput, category fractions) "
        "into BENCH_*.json and, with --trace-dir, writes "
        "<name>.profile.json and a <name>.flame.svg flamegraph",
    )


@pytest.fixture(autouse=True)
def _trace_dir(request):
    """Point the harness at the session's ``--trace`` directory and
    drop any runtime remembered from a previous test (so a benchmark
    without its own runtime never exports a stale trace)."""
    _harness.LAST_RUNTIME = None
    _harness.set_trace_dir(request.config.getoption("--trace-dir"))
    _harness.set_live_html(request.config.getoption("--live-html"))
    _harness.set_profile(request.config.getoption("--profile"))
    yield
    _harness.set_trace_dir(None)
    _harness.set_live_html(False)
    _harness.set_profile(False)
