"""Shared scaffolding for the figure-reproduction benchmarks.

Scaling: the paper's clusters move 1-100 TB through 10-100 machines; a
laptop-scale simulation keeps every *ratio* that drives the results --
data:aggregate-memory (external-sort pressure), partition:store
(working-set pressure), and partition *counts* in ranges where block
sizes cross the disks' seek-dominated regime -- while shrinking absolute
bytes so runs finish in seconds to minutes.  Each benchmark's docstring
states its scale factor; EXPERIMENTS.md compares shapes, not absolute
numbers, per the reproduction brief.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.baselines.spark import SparkConfig, SparkSortJob
from repro.cluster import (
    Cluster,
    ClusterSpec,
    D3_2XLARGE,
    FailurePlan,
    I3_2XLARGE,
    NodeSpec,
    R6I_2XLARGE,
)
from repro.common.units import GB, GIB
from repro.futures import Runtime, RuntimeConfig
from repro.metrics import ResultTable
from repro.simcore import Environment
from repro.sort import SortJobConfig, run_sort

#: Everything in the 1 TB sort experiments is scaled down by this factor
#: (data and per-node object store alike), preserving data:memory and
#: partition:store ratios.
SORT_SCALE = 10

#: "1 TB" after scaling.
SCALED_TB = 1000 * GB // SORT_SCALE


def scaled_node(base: NodeSpec) -> NodeSpec:
    """A paper instance type with its object store scaled down."""
    return base.with_object_store(max(1, base.object_store_bytes // SORT_SCALE))


def hdd_node() -> NodeSpec:
    return scaled_node(D3_2XLARGE)


def ssd_node() -> NodeSpec:
    return scaled_node(I3_2XLARGE)


#: Where ``finish_bench`` writes BENCH_<name>.json and (when a runtime
#: is available) observability traces; set from the ``--trace`` pytest
#: option by :mod:`benchmarks.conftest`.  ``None`` disables trace export
#: but JSON results still land in the working directory.
_TRACE_DIR: Optional[Path] = None

#: The most recently created benchmark runtime (set by
#: :func:`make_runtime`); ``finish_bench`` falls back to it so figure
#: functions that return only a table still get their trace exported.
LAST_RUNTIME: Optional[Runtime] = None


def set_trace_dir(path: Optional[str]) -> None:
    """Point trace/JSON export at ``path`` (created if missing)."""
    global _TRACE_DIR
    if path is None:
        _TRACE_DIR = None
        return
    _TRACE_DIR = Path(path)
    _TRACE_DIR.mkdir(parents=True, exist_ok=True)


#: When true (the ``--live-html`` pytest option), ``finish_bench`` also
#: exports the single-file HTML run explorer next to the trace files --
#: the artifact CI attaches to the perf-gate run.
_LIVE_HTML = False


def set_live_html(enabled: bool) -> None:
    """Toggle HTML run-explorer export alongside bench traces."""
    global _LIVE_HTML
    _LIVE_HTML = bool(enabled)


#: When true (the ``--profile`` pytest option), every runtime built by
#: :func:`make_runtime` gets a ``repro.obs.profile.SelfProfiler``
#: attached, and ``finish_bench`` stamps the aggregated profile
#: (throughput, category fractions, counters) into ``BENCH_*.json`` as
#: its ``profile`` section plus ``<name>.profile.json`` and a
#: ``<name>.flame.svg`` flamegraph in the trace dir.  Only the cheap
#: scoped profiler runs here -- never cProfile, whose per-call hook
#: would corrupt the very wall-time numbers the trajectory track
#: follows.
_PROFILE = False

#: The profiler spanning the current benchmark's runtimes (a figure
#: bench builds one runtime per variant; the profile aggregates them).
_PROFILER: Optional[Any] = None


def set_profile(enabled: bool) -> None:
    """Toggle self-profiling of benchmark runs (the ``--profile`` flag)."""
    global _PROFILE, _PROFILER
    _PROFILE = bool(enabled)
    _PROFILER = None


def make_runtime(
    node: NodeSpec, num_nodes: int, config: Optional[RuntimeConfig] = None
) -> Runtime:
    global LAST_RUNTIME, _PROFILER
    LAST_RUNTIME = Runtime.create(node, num_nodes, config=config)
    if _PROFILE:
        from repro.obs.profile import SelfProfiler

        if _PROFILER is None:
            _PROFILER = SelfProfiler()
        else:
            _PROFILER.detach()  # hop from the previous variant's runtime
        _PROFILER.attach(LAST_RUNTIME)
    return LAST_RUNTIME


def run_es_sort(
    node: NodeSpec,
    num_nodes: int,
    variant: str,
    num_partitions: int,
    data_bytes: int,
    output_to_disk: bool = True,
    failures: Sequence[FailurePlan] = (),
    runtime_config: Optional[RuntimeConfig] = None,
):
    """One Exoshuffle sort run on a fresh runtime; returns (result, rt)."""
    rt = make_runtime(node, num_nodes, config=runtime_config)
    config = SortJobConfig(
        variant=variant,
        num_partitions=num_partitions,
        partition_bytes=data_bytes // num_partitions,
        virtual=True,
        output_to_disk=output_to_disk,
        failures=failures,
    )
    result = run_sort(rt, config)
    assert result.validated
    return result, rt


def run_spark_sort_on(
    node: NodeSpec,
    num_nodes: int,
    num_partitions: int,
    data_bytes: int,
    push_based: bool = False,
    compression: bool = False,
    output_to_disk: bool = True,
):
    env = Environment()
    cluster = Cluster.homogeneous(env, node, num_nodes)
    job = SparkSortJob(
        cluster,
        config=SparkConfig(push_based=push_based, compression=compression),
        num_partitions=num_partitions,
        partition_bytes=data_bytes // num_partitions,
        output_to_disk=output_to_disk,
    )
    return job.run()


def sort_figure_table(
    title: str,
    node: NodeSpec,
    num_nodes: int,
    data_bytes: int,
    partition_counts: Sequence[int],
    variants: Sequence[str],
    include_spark: bool = True,
    output_to_disk: bool = True,
    variant_max_partitions: Optional[Dict[str, int]] = None,
) -> ResultTable:
    """The common Fig 4a/4b shape: JCT per (variant, partition count).

    ``variant_max_partitions`` skips expensive combinations (the merge
    variant's task graphs grow quadratically in wall-clock cost).
    """
    caps = variant_max_partitions or {}
    table = ResultTable(
        title, ["variant", "partitions", "seconds", "disk_gb_written"]
    )
    for parts in partition_counts:
        for variant in variants:
            if parts > caps.get(variant, 10**9):
                continue
            result, rt = run_es_sort(
                node, num_nodes, variant, parts, data_bytes,
                output_to_disk=output_to_disk,
            )
            table.add_row(
                variant=variant,
                partitions=parts,
                seconds=result.sort_seconds,
                disk_gb_written=rt.counters.get("disk_bytes_written") / GB,
            )
        if include_spark:
            spark = run_spark_sort_on(
                node, num_nodes, parts, data_bytes,
                output_to_disk=output_to_disk,
            )
            table.add_row(
                variant="spark",
                partitions=parts,
                seconds=spark.sort_seconds,
                disk_gb_written=spark.stats.get("disk_bytes_written", 0) / GB,
            )
    return table


def column_by_variant(table: ResultTable, variant: str) -> Dict[int, float]:
    """partition-count -> seconds for one variant."""
    return {
        row["partitions"]: row["seconds"]
        for row in table.rows
        if row["variant"] == variant
    }


def print_table(table: ResultTable, extra_lines: List[str] = ()) -> None:
    print()
    print(table.render())
    for line in extra_lines:
        print(line)


def _git_sha() -> Optional[str]:
    """The repo HEAD this result was produced from, or ``None``."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _wall_time_seconds(benchmark: Any) -> Optional[float]:
    """Total measured wall time from a pytest-benchmark fixture, or
    ``None`` when stats are unavailable (defensive across versions)."""
    try:
        return float(benchmark.stats.stats.total)
    except AttributeError:
        try:
            return float(benchmark.stats["total"])
        except Exception:
            return None


def finish_bench(
    name: str,
    table: ResultTable,
    benchmark: Any = None,
    extra_lines: Sequence[str] = (),
    runtime: Optional[Runtime] = None,
) -> Path:
    """Print a figure table and persist a machine-readable result file.

    Writes ``BENCH_<name>.json`` (table rows, extra lines, measured wall
    time, simulated time, and key runtime counters) into the ``--trace``
    directory when set, else the working directory.  When a runtime is
    available (passed explicitly or remembered from the last
    :func:`make_runtime` call) and ``--trace`` is set, also exports the
    run's observability record -- a ``record_run`` JSONL and a Chrome
    trace -- and records their paths in the JSON.  Returns the JSON path.

    Every result is stamped for comparability: the git SHA it was
    produced from, a config *fingerprint* (bench name, the harness
    scale factor, the cluster shape of the stamping runtime), and the
    run's critical-path category summary.  ``python -m repro.obs diff``
    keys off the fingerprint to refuse apples-to-oranges comparisons
    and off the critpath summary to attribute regressions.

    Under ``--profile``, the self-profiler attached by
    :func:`make_runtime` is detached and finalized here, its summary is
    stamped into the JSON as the ``profile`` section (the non-gating
    trajectory input of ``repro.obs diff``), and ``<name>.profile.json``
    plus a ``<name>.flame.svg`` flamegraph land in the trace dir.
    """
    global _PROFILER
    print_table(table, list(extra_lines))
    rt = runtime if runtime is not None else LAST_RUNTIME
    out_dir = _TRACE_DIR if _TRACE_DIR is not None else Path.cwd()
    profiler = _PROFILER
    _PROFILER = None  # the next make_runtime starts a fresh profile
    if profiler is not None:
        profiler.detach()
    critpath_summary: Optional[Dict[str, Any]] = None
    if rt is not None and rt.bus.events:
        from repro.obs.perf import critical_path

        if profiler is not None:
            # Span derivation is an obs hot path the profiler cannot
            # reach by instance shadowing; charge it explicitly.
            with profiler.scope("span.derive"):
                critpath_summary = critical_path(rt.bus.events).to_dict()
        else:
            critpath_summary = critical_path(rt.bus.events).to_dict()
    if profiler is not None:
        profiler.finish()
    payload: Dict[str, Any] = {
        "name": name,
        "title": table.title,
        "rows": table.rows,
        "extra": list(extra_lines),
        "wall_time_s": _wall_time_seconds(benchmark) if benchmark else None,
        "sim_time_s": rt.env.now if rt is not None else None,
        "counters": rt.counters.as_dict() if rt is not None else {},
        "git_sha": _git_sha(),
        "fingerprint": {
            "bench": name,
            "sort_scale": SORT_SCALE,
            # Elasticity can change the cluster mid-run and spill can be
            # redirected to a shared tier; both shape the numbers, so
            # both are part of comparability.
            "nodes": len(rt.node_managers) if rt is not None else None,
            "spill_backend": rt.config.spill_backend if rt is not None else None,
            "cluster": rt.cluster_snapshot() if rt is not None else None,
        },
        "events_jsonl": None,
        "chrome_trace": None,
        "live_html": None,
    }
    if critpath_summary is not None:
        payload["critpath"] = critpath_summary
    if profiler is not None:
        payload["profile"] = profiler.to_dict()
        if _TRACE_DIR is not None:
            from repro.obs.profile import folded_from_profiler, write_flamegraph

            profile_path = _TRACE_DIR / f"{name}.profile.json"
            profile_path.write_text(
                json.dumps(payload["profile"], indent=2) + "\n"
            )
            write_flamegraph(
                folded_from_profiler(profiler),
                _TRACE_DIR / f"{name}.flame.svg",
                title=f"{name} self-profile",
            )
    if rt is not None and _TRACE_DIR is not None:
        from repro.obs.report import record_run
        from repro.obs.trace import write_chrome_trace

        events_path = _TRACE_DIR / f"{name}.events.jsonl"
        chrome_path = _TRACE_DIR / f"{name}.trace.json"
        record_run(rt, str(events_path))
        write_chrome_trace(rt.bus.events, str(chrome_path))
        payload["events_jsonl"] = str(events_path)
        payload["chrome_trace"] = str(chrome_path)
        if _LIVE_HTML:
            from repro.obs.events import EventBus
            from repro.obs.live import write_html

            # Re-load the just-written JSONL rather than reading the bus:
            # record_run appends a run.summary record (cluster capacities,
            # final counters) that never passes through live subscribers,
            # and the explorer uses it to scale the store gauges.
            html_path = _TRACE_DIR / f"{name}.explorer.html"
            write_html(
                EventBus.load_jsonl(str(events_path)),
                str(html_path),
                title=f"{name} -- {table.title}",
            )
            payload["live_html"] = str(html_path)
    payload["written_at"] = time.time()
    json_path = out_dir / f"BENCH_{name}.json"
    json_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return json_path


def print_sort_figure_chart(table: ResultTable, title: str) -> None:
    """Render a Fig 4-style JCT-vs-partitions chart next to the table."""
    from repro.metrics.ascii_charts import grouped_bar_chart

    groups: Dict[str, Dict[int, float]] = {}
    for row in table.rows:
        groups.setdefault(row["variant"], {})[row["partitions"]] = row["seconds"]
    print()
    print(grouped_bar_chart(title, groups))
