"""Streaming shuffle tier: open-loop fleet latency and backpressure.

Two arms over the streaming tier (no figure in the paper -- the tier is
the "extensible architecture" claim applied to continuous workloads,
the direction ShuffleBench measures for real streaming engines):

1. **Open-loop fleet**: one streaming job per tenant across a
   100-tenant fleet, every source on a pre-drawn Poisson timeline, all
   submitted through admission control and weighted fair sharing.  The
   headline numbers are the end-to-end record latency percentiles
   (source event time -> aggregate visibility): the exact global
   p50/p99/p999 plus the median and worst per-tenant percentiles, so
   tail isolation across tenants is part of the gated result.
2. **Backpressure contrast**: one deliberately overloaded job (slow
   reducers, fat records) run twice -- in-flight windows bounded vs
   unbounded.  The claim is the store-footprint trade: with
   backpressure on, peak object-store bytes stay bounded (and stalls
   are paid as latency); with it off, every window's repartition blocks
   pile up in the store.

Scale: tenant count matches the "hundreds of concurrent jobs" shape at
laptop size -- records are 64-byte tokens so the fleet's cost is task
orchestration, not data volume, which is what the tier adds over the
batch shuffles the other benches already gate.
"""

from __future__ import annotations

import statistics
import sys
from typing import Any, Dict

import pytest

from repro.common.units import MIB
from repro.jobs import JobSpec, StreamSpec
from repro.metrics import ResultTable
from repro.streaming import (
    open_loop_workload,
    run_open_loop,
    run_streaming_job,
    streaming_node_spec,
)

from benchmarks._harness import finish_bench, make_runtime

SEED = 11

#: Fleet-arm shape: >= 100 tenants is the acceptance bar.
FLEET_TENANTS = 100
FLEET_DURATION_S = 24.0
FLEET_WINDOW_S = 6.0
FLEET_NODES = 4

COLUMNS = [
    "arm", "tenants", "records", "stalls", "peak_inflight",
    "p50_s", "p99_s", "p999_s", "peak_store_mib", "sim_seconds",
]


def run_fleet(num_tenants: int, duration_s: float = FLEET_DURATION_S):
    """The open-loop arm: one streaming job per tenant, via admission."""
    tenants, specs = open_loop_workload(
        SEED, num_tenants, duration_s=duration_s, window_s=FLEET_WINDOW_S
    )
    rt = make_runtime(streaming_node_spec(), FLEET_NODES)
    report = run_open_loop(specs, tenants, runtime=rt)
    return report, rt


def run_contrast_arm(backpressure: bool) -> Dict[str, Any]:
    """The contrast arm: one overloaded job, bounded vs unbounded."""
    spec = JobSpec(
        name="overload", tenant="contrast", num_maps=4, num_reduces=2,
        seed=SEED,
        stream=StreamSpec(
            rate_hz=40.0, duration_s=24.0, window_s=2.0,
            bytes_per_record=65536, max_inflight_windows=1,
            backpressure=backpressure,
        ),
    )
    rt = make_runtime(streaming_node_spec(), 2)
    result = rt.run(
        run_streaming_job, rt, spec, job_id="contrast",
        reduce_options={"compute": 6.0},
    )
    return {
        "records": result.records,
        "stalls": result.backpressure_stalls,
        "peak_inflight": result.peak_inflight_windows,
        "peak_store_mib": rt.stats()["store_peak_bytes"] / MIB,
        "sim_seconds": rt.env.now,
    }


def _tenant_percentile_spread(report) -> Dict[str, Dict[str, float]]:
    """Median and worst of each percentile across the tenant fleet."""
    spread: Dict[str, Dict[str, float]] = {}
    for q in ("p50", "p99", "p999"):
        values = [s[q] for s in report.tenant_latency.values()]
        spread[q] = {
            "median": statistics.median(values),
            "worst": max(values),
        }
    return spread


def _run_figure(num_tenants: int = FLEET_TENANTS,
                duration_s: float = FLEET_DURATION_S) -> ResultTable:
    table = ResultTable(
        "Streaming shuffle: open-loop fleet latency and backpressure trade",
        COLUMNS,
    )
    report, rt = run_fleet(num_tenants, duration_s=duration_s)
    assert report.all_done, "open-loop fleet left non-DONE jobs"
    table.add_row(
        arm="fleet-global",
        tenants=num_tenants,
        records=report.records,
        stalls=report.backpressure_stalls,
        peak_inflight=report.peak_inflight_windows,
        p50_s=report.latency["p50"],
        p99_s=report.latency["p99"],
        p999_s=report.latency["p999"],
        peak_store_mib=report.stats["store_peak_bytes"] / MIB,
        sim_seconds=report.duration,
    )
    spread = _tenant_percentile_spread(report)
    for which in ("median", "worst"):
        table.add_row(
            arm=f"fleet-tenant-{which}",
            tenants=num_tenants,
            p50_s=spread["p50"][which],
            p99_s=spread["p99"][which],
            p999_s=spread["p999"][which],
        )
    for on in (True, False):
        metrics = run_contrast_arm(on)
        table.add_row(arm="bp-on" if on else "bp-off", tenants=1, **metrics)
    return table


def assert_streaming_claims(table: ResultTable) -> None:
    """The arms' claims: ordered tails, bounded footprint under pressure."""
    fleet = table.find(arm="fleet-global")
    worst = table.find(arm="fleet-tenant-worst")
    assert fleet["records"] > 0
    assert fleet["p50_s"] <= fleet["p99_s"] <= fleet["p999_s"]
    assert worst["p999_s"] >= fleet["p50_s"]
    bp_on = table.find(arm="bp-on")
    bp_off = table.find(arm="bp-off")
    assert bp_on["records"] == bp_off["records"], "open loop: same offered load"
    assert bp_on["stalls"] > 0 and bp_off["stalls"] == 0
    assert bp_on["peak_inflight"] <= 1 < bp_off["peak_inflight"]
    assert bp_on["peak_store_mib"] < bp_off["peak_store_mib"], (
        "backpressure must bound peak store bytes below the unbounded arm"
    )


@pytest.mark.benchmark(group="streaming")
def test_streaming_shuffle_fleet(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("streaming_shuffle", table, benchmark=benchmark)
    assert_streaming_claims(table)


def main(argv=None) -> int:
    """``python benchmarks/bench_streaming_shuffle.py [--smoke]``."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced fleet (12 tenants, short horizon); exit nonzero "
        "unless latency ordering and the backpressure bound hold",
    )
    args = parser.parse_args(argv)
    tenants = 12 if args.smoke else FLEET_TENANTS
    duration = 12.0 if args.smoke else FLEET_DURATION_S
    table = _run_figure(num_tenants=tenants, duration_s=duration)
    print(table.render())
    try:
        assert_streaming_claims(table)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print("streaming shuffle smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
