"""Multi-tenant throughput and fairness vs. concurrency (jobs layer).

The control plane's figure of merit: as the fleet grows from 1 to 16
concurrent jobs across 4 tenants, aggregate throughput (jobs per
simulated minute) should rise with available parallelism while the
weighted fair-share scheduler keeps the max/min completion-time ratio
bounded -- equal-weight jobs of identical shape should not diverge even
when 16 of them contend for the same task slots.
"""

import pytest

from repro.jobs import mixed_workload, run_jobs
from repro.metrics import ResultTable

from benchmarks._harness import finish_bench

SEED = 4
FLEET_SIZES = (1, 4, 16)


def _run_figure():
    table = ResultTable(
        "Jobs layer: throughput and fairness vs. concurrency",
        [
            "num_jobs",
            "makespan_s",
            "jobs_per_min",
            "mean_job_s",
            "fairness_ratio",
            "all_done",
        ],
    )
    for num_jobs in FLEET_SIZES:
        tenants, specs = mixed_workload(SEED, num_jobs=num_jobs)
        report = run_jobs(specs, tenants)
        durations = [j.duration for j in report.jobs if j.duration]
        table.add_row(
            num_jobs=num_jobs,
            makespan_s=report.duration,
            jobs_per_min=60.0 * num_jobs / report.duration,
            mean_job_s=sum(durations) / len(durations),
            fairness_ratio=report.completion_ratio,
            all_done=report.all_done and not report.incorrect,
        )
    return table


@pytest.mark.benchmark(group="jobs")
def test_jobs_concurrency_throughput_and_fairness(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("jobs_concurrency", table, benchmark=benchmark)
    assert all(row["all_done"] for row in table.rows)
    one = table.find(num_jobs=1)
    sixteen = table.find(num_jobs=16)
    # Concurrency pays: 16 jobs share the cluster instead of queueing
    # serially, so aggregate throughput must beat the single-job rate.
    assert sixteen["jobs_per_min"] > one["jobs_per_min"]
    # Fair sharing holds at full contention (the acceptance bound).
    assert sixteen["fairness_ratio"] is not None
    assert sixteen["fairness_ratio"] <= 2.0
