"""Figure 4c: in-memory sort on 10 SSD nodes.

Data fits comfortably in aggregate object-store memory and outputs stay
in memory.  Paper shape: ES-simple is 20-70% *faster* than ES-push* at 80
partitions (merging only adds overhead when disk I/O is free), and
ES-push* wins once partitions reach 200+ (better pipelining of many small
tasks).  This crossover is the motivation for run-time shuffle selection
(`repro.shuffle.choose_shuffle`).
"""

import pytest

from repro.metrics import ResultTable

from benchmarks._harness import (
    column_by_variant,
    finish_bench,
    run_es_sort,
    ssd_node,
)

NUM_NODES = 10
PARTITIONS = [80, 200, 400]
VARIANTS = ["simple", "push*"]


def _run_figure():
    node = ssd_node()
    # ~30% of aggregate store memory: decidedly in-memory.
    data_bytes = int(0.3 * node.object_store_bytes * NUM_NODES)
    table = ResultTable(
        "Fig 4c: in-memory sort, 10 SSD nodes",
        ["variant", "partitions", "seconds", "spilled_gb"],
    )
    for parts in PARTITIONS:
        for variant in VARIANTS:
            result, rt = run_es_sort(
                node, NUM_NODES, variant, parts, data_bytes,
                output_to_disk=False,
            )
            table.add_row(
                variant=variant,
                partitions=parts,
                seconds=result.sort_seconds,
                spilled_gb=rt.counters.get("spill_bytes_written") / 1e9,
            )
    return table


@pytest.mark.benchmark(group="fig4c")
def test_fig4c_inmemory_sort(benchmark):
    table = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig4c_inmemory_sort", table, benchmark=benchmark)
    simple = column_by_variant(table, "simple")
    push = column_by_variant(table, "push*")
    # At 80 partitions simple wins (paper: by 20-70%).
    assert simple[80] < push[80]
    # The crossover: by 400 partitions push* is at least even/winning.
    assert push[400] <= simple[400]
    # And the gap moves monotonically in push*'s favour.
    ratios = [push[p] / simple[p] for p in PARTITIONS]
    assert ratios[0] > ratios[-1]
