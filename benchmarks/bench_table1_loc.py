"""Table 1: lines of code -- shuffle algorithms as libraries vs monoliths.

Counts the non-blank, non-comment, non-docstring lines of each shuffle
algorithm in ``repro.shuffle`` and compares against the monolithic-system
sizes the paper reports (Spark's shuffle package, Riffle, Magnet).  Paper
claim: an order of magnitude less code per algorithm.
"""

import pytest

from repro.metrics import ResultTable
from repro.tools.loc import PAPER_MONOLITHIC_LOC, shuffle_library_loc

from benchmarks._harness import finish_bench

#: The paper's Exoshuffle LoC, for reference alongside ours.
PAPER_EXOSHUFFLE_LOC = {
    "simple": 215,
    "pre-shuffle merge": 265,
    "push-based": 256,
    "push-based with pipelining": 256,
}


def _run_table():
    ours = shuffle_library_loc()
    table = ResultTable(
        "Table 1: shuffle implementation size (lines of code)",
        ["algorithm", "monolithic_loc", "paper_exoshuffle_loc", "our_loc"],
    )
    for algorithm, loc in ours.items():
        table.add_row(
            algorithm=algorithm,
            monolithic_loc=PAPER_MONOLITHIC_LOC[algorithm],
            paper_exoshuffle_loc=PAPER_EXOSHUFFLE_LOC[algorithm],
            our_loc=loc,
        )
    return table


@pytest.mark.benchmark(group="table1")
def test_table1_lines_of_code(benchmark):
    table = benchmark.pedantic(_run_table, rounds=1, iterations=1)
    finish_bench("table1_loc", table, benchmark=benchmark)
    for row in table.rows:
        # Order of magnitude smaller than the monolithic counterpart.
        assert row["our_loc"] * 10 <= row["monolithic_loc"]
        # And sane: a real implementation, not a stub.
        assert row["our_loc"] >= 30
