"""Figure 4b: 1 TB sort on 10 SSD nodes, JCT vs number of partitions.

Same sweep as Fig 4a on i3.2xlarge-like NVMe nodes (scaled 10x).  Paper
shape: the SSD's high random IOPS shrink the I/O-efficiency gains, all
Exoshuffle variants beat the Spark baseline, and the optimised push
variants run close to the theoretical disk bound.
"""

import pytest

from repro.cluster import ClusterSpec

from repro.sort import theoretical_sort_seconds

from benchmarks._harness import (
    print_sort_figure_chart,
    SCALED_TB,
    column_by_variant,
    finish_bench,
    sort_figure_table,
    ssd_node,
)

NUM_NODES = 10
PARTITIONS = [200, 400, 800]
VARIANTS = ["simple", "merge", "push", "push*"]


def _run_figure():
    node = ssd_node()
    table = sort_figure_table(
        "Fig 4b: 1 TB sort, 10 SSD nodes (scaled 10x)",
        node,
        NUM_NODES,
        SCALED_TB,
        PARTITIONS,
        VARIANTS,
        variant_max_partitions={"merge": 400},
    )
    theory = theoretical_sort_seconds(
        ClusterSpec.homogeneous(node, NUM_NODES), SCALED_TB
    )
    return table, theory


@pytest.mark.benchmark(group="fig4b")
def test_fig4b_ssd_sort(benchmark):
    table, theory = benchmark.pedantic(_run_figure, rounds=1, iterations=1)
    finish_bench("fig4b_ssd_sort", table, benchmark=benchmark, extra_lines=[f"theoretical 4D/B baseline: {theory:.1f}s"])
    print_sort_figure_chart(table, 'Fig 4b shape (seconds by partitions)')
    clean = {v: column_by_variant(table, v) for v in VARIANTS + ["spark"]}

    # SSDs mute the partition-count sensitivity: ES-simple's degradation
    # is much smaller than on HDD (no seek wall, only metadata overhead).
    simple = clean["simple"]
    assert simple[800] < 2.5 * simple[200]
    # The optimised push variant lands near the theoretical bound.
    best_push = min(clean["push*"].values())
    assert best_push < 2.2 * theory
    # Exoshuffle variants beat Spark at high partition counts.
    assert clean["push*"][800] < clean["spark"][800]
    assert clean["simple"][800] < clean["spark"][800] * 1.6
