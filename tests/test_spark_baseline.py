"""Behavioural tests for the monolithic Spark-style baseline."""

import pytest

from repro.baselines.spark import SparkConfig, run_spark_sort
from repro.cluster import ClusterSpec
from repro.common.units import MB

from tests.conftest import make_node_spec


def hdd_cluster(nodes=4):
    return ClusterSpec.homogeneous(
        make_node_spec(disk_mb_s=200.0, seek_ms=8.0), nodes
    )


def test_sort_completes_and_counts_io():
    result = run_spark_sort(hdd_cluster(), num_partitions=16, partition_bytes=20 * MB)
    assert result.sort_seconds > 0
    # read input + read shuffle; write shuffle + write output
    assert result.stats["disk_bytes_read"] >= 2 * 16 * 20 * MB * 0.9
    assert result.stats["disk_bytes_written"] >= 2 * 16 * 20 * MB * 0.9


def test_many_partitions_hit_small_io_wall():
    """Same data, more partitions -> quadratically more random reads ->
    slower on seeky disks (Spark's classic degradation)."""
    few = run_spark_sort(hdd_cluster(), num_partitions=8, partition_bytes=64 * MB)
    many = run_spark_sort(hdd_cluster(), num_partitions=64, partition_bytes=8 * MB)
    assert many.sort_seconds > 1.3 * few.sort_seconds


def test_push_mode_beats_native_at_many_partitions():
    config = SparkConfig(push_based=True)
    native = run_spark_sort(hdd_cluster(), num_partitions=64, partition_bytes=8 * MB)
    push = run_spark_sort(
        hdd_cluster(), num_partitions=64, partition_bytes=8 * MB, config=config
    )
    assert push.sort_seconds < native.sort_seconds
    assert push.mode == "spark-push"


def test_push_mode_doubles_intermediate_writes():
    config = SparkConfig(push_based=True)
    result = run_spark_sort(
        hdd_cluster(), num_partitions=16, partition_bytes=20 * MB, config=config
    )
    assert result.stats["merged_bytes_written"] == pytest.approx(
        result.stats["shuffle_bytes_written"], rel=0.05
    )


def test_compression_reduces_intermediate_bytes():
    config = SparkConfig(compression=True, compression_ratio=0.6)
    plain = run_spark_sort(hdd_cluster(), num_partitions=16, partition_bytes=20 * MB)
    packed = run_spark_sort(
        hdd_cluster(), num_partitions=16, partition_bytes=20 * MB, config=config
    )
    assert (
        packed.stats["shuffle_bytes_written"]
        == pytest.approx(0.6 * plain.stats["shuffle_bytes_written"], rel=0.01)
    )


def test_in_memory_mode_skips_output_write():
    result = run_spark_sort(
        hdd_cluster(),
        num_partitions=8,
        partition_bytes=10 * MB,
        output_to_disk=False,
    )
    # writes = shuffle only (no final output)
    assert result.stats["disk_bytes_written"] == pytest.approx(
        result.stats["shuffle_bytes_written"]
    )


def test_config_validation():
    with pytest.raises(ValueError):
        SparkConfig(compression_ratio=0.0)
    with pytest.raises(ValueError):
        SparkConfig(cpu_throughput_bytes_per_sec=-1)
