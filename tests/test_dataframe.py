"""The distributed DataFrame layer: blocks, operators, shuffle-backed ops."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import seeded_rng
from repro.dataframe import DistributedFrame, FrameBlock

from tests.conftest import make_runtime


def sample_block(n=100, seed=0):
    rng = seeded_rng(seed, "frame")
    return FrameBlock(
        {
            "k": rng.integers(0, 10, size=n),
            "v": rng.normal(size=n),
            "w": rng.integers(0, 1000, size=n),
        }
    )


class TestFrameBlock:
    def test_shape_and_access(self):
        block = sample_block(50)
        assert block.num_rows == 50
        assert set(block.column_names) == {"k", "v", "w"}
        assert len(block["v"]) == 50
        assert block.size_bytes > 0

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            FrameBlock({"a": np.arange(3), "b": np.arange(4)})
        with pytest.raises(ValueError):
            FrameBlock({})

    def test_take_filter_sort(self):
        block = sample_block(30)
        taken = block.take(np.array([2, 0, 1]))
        assert taken.num_rows == 3
        filtered = block.filter_rows(block["k"] > 5)
        assert (filtered["k"] > 5).all()
        ordered = block.sort_by("w")
        assert (np.diff(ordered["w"]) >= 0).all()

    def test_with_column(self):
        block = sample_block(10)
        doubled = block.with_column("v2", block["v"] * 2)
        assert np.allclose(doubled["v2"], block["v"] * 2)
        with pytest.raises(ValueError):
            block.with_column("bad", np.arange(3))

    def test_range_partition_covers_rows(self):
        block = sample_block(200)
        pieces = block.range_partition("w", [250, 500, 750])
        assert sum(p.num_rows for p in pieces) == 200
        for i, piece in enumerate(pieces):
            if piece.num_rows:
                assert piece["w"].min() >= [0, 250, 500, 750][i]

    def test_hash_partition_is_deterministic_and_total(self):
        block = sample_block(300)
        a = block.hash_partition("k", 4)
        b = block.hash_partition("k", 4)
        assert sum(p.num_rows for p in a) == 300
        for pa, pb in zip(a, b):
            assert (pa["k"] == pb["k"]).all()
        # Same key never lands in two buckets.
        seen = {}
        for i, piece in enumerate(a):
            for key in np.unique(piece["k"]):
                assert seen.setdefault(int(key), i) == i

    def test_concat_schema_checked(self):
        block = sample_block(5)
        other = FrameBlock({"x": np.arange(5)})
        with pytest.raises(ValueError):
            FrameBlock.concat([block, other])

    def test_groupby_agg_matches_reference(self):
        block = sample_block(500)
        out = block.groupby_agg("k", {"v": "sum", "w": "min"})
        for i, key in enumerate(out["k"]):
            mask = block["k"] == key
            assert out["v_sum"][i] == pytest.approx(block["v"][mask].sum())
            assert out["w_min"][i] == block["w"][mask].min()

    def test_groupby_count_and_empty(self):
        block = sample_block(100)
        counted = block.groupby_agg("k", {"v": "count"})
        assert counted["v_count"].sum() == 100
        empty = block.take(np.array([], dtype=int))
        out = empty.groupby_agg("k", {"v": "sum"})
        assert out.num_rows == 0

    def test_groupby_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            sample_block().groupby_agg("k", {"v": "median"})


class TestDistributedFrame:
    def _frame(self, rt, n=1000, parts=8, seed=1):
        rng = seeded_rng(seed, "dist")
        data = {
            "k": rng.integers(0, 20, size=n),
            "v": rng.normal(size=n),
        }
        frame = rt.run(
            lambda: DistributedFrame.from_arrays(rt, data, parts)
        )
        return frame, data

    def test_round_trip_preserves_rows(self):
        rt = make_runtime(num_nodes=3)
        frame, data = self._frame(rt)
        assert rt.run(frame.count) == 1000
        collected = rt.run(frame.collect)
        assert np.allclose(np.sort(collected["v"]), np.sort(data["v"]))

    def test_filter_and_with_column(self):
        rt = make_runtime(num_nodes=2)
        frame, data = self._frame(rt)

        def driver():
            positive = frame.filter("v", lambda v: v > 0)
            squared = positive.with_column("v2", lambda b: b["v"] ** 2)
            return squared.collect()

        out = rt.run(driver)
        assert (out["v"] > 0).all()
        assert np.allclose(out["v2"], out["v"] ** 2)

    def test_sort_values_globally_sorted(self):
        rt = make_runtime(num_nodes=3)
        frame, data = self._frame(rt, n=2000, parts=10)

        def driver():
            by_v = frame.sort_values("v")
            return rt.get(by_v.partitions)

        pieces = rt.run(driver)
        glued = np.concatenate([p["v"] for p in pieces])
        assert (np.diff(glued) >= 0).all()
        assert np.allclose(np.sort(data["v"]), glued)

    def test_groupby_sum_matches_reference(self):
        rt = make_runtime(num_nodes=3)
        frame, data = self._frame(rt, n=3000, parts=6)

        def driver():
            out = frame.groupby_agg("k", {"v": "sum"})
            return out.collect().sort_by("k")

        result = rt.run(driver)
        for i, key in enumerate(result["k"]):
            expected = data["v"][data["k"] == key].sum()
            assert result["v_sum"][i] == pytest.approx(expected)

    def test_groupby_mean_and_count(self):
        rt = make_runtime(num_nodes=2)
        frame, data = self._frame(rt, n=1500, parts=5)

        def driver():
            out = frame.groupby_agg("k", {"v": "mean"})
            return out.collect().sort_by("k")

        result = rt.run(driver)
        for i, key in enumerate(result["k"]):
            expected = data["v"][data["k"] == key].mean()
            assert result["v_mean"][i] == pytest.approx(expected)

    def test_repartition_conserves_rows(self):
        rt = make_runtime(num_nodes=2)
        frame, _ = self._frame(rt, n=900, parts=3)

        def driver():
            wide = frame.repartition(9)
            assert wide.num_partitions == 9
            return wide.count()

        assert rt.run(driver) == 900

    def test_head(self):
        rt = make_runtime(num_nodes=2)
        frame, _ = self._frame(rt)
        head = rt.run(lambda: frame.head(5))
        assert head.num_rows == 5

    def test_empty_partitions_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(ValueError):
            DistributedFrame(rt, [], ["a"])


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=400),
    parts=st.integers(min_value=1, max_value=6),
    cardinality=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_distributed_groupby_equals_local(n, parts, cardinality, seed):
    rng = seeded_rng(seed, "prop")
    data = {
        "k": rng.integers(0, cardinality, size=n),
        "v": rng.normal(size=n),
    }
    rt = make_runtime(num_nodes=2)

    def driver():
        frame = DistributedFrame.from_arrays(rt, data, parts)
        return frame.groupby_agg("k", {"v": "sum"}).collect().sort_by("k")

    result = rt.run(driver)
    reference = FrameBlock(data).groupby_agg("k", {"v": "sum"})
    assert (result["k"] == reference["k"]).all()
    assert np.allclose(result["v_sum"], reference["v_sum"])
