"""Direct unit tests for the object directory."""

import pytest

from repro.common.ids import NodeId, ObjectId, TaskId
from repro.futures.directory import ObjectDirectory


def make_directory(zeroed):
    return ObjectDirectory(on_refcount_zero=zeroed.append)


class TestLifecycle:
    def test_register_and_create(self):
        zeroed = []
        d = make_directory(zeroed)
        oid = ObjectId(1)
        d.register(oid, creator=TaskId(7))
        assert not d.is_created(oid)
        d.mark_created(oid, size=100)
        assert d.is_created(oid)
        assert d.get(oid).size == 100
        assert d.get(oid).creator == TaskId(7)

    def test_double_register_rejected(self):
        d = make_directory([])
        d.register(ObjectId(1), None)
        with pytest.raises(ValueError):
            d.register(ObjectId(1), None)

    def test_drop_forgets_everything(self):
        d = make_directory([])
        oid = ObjectId(2)
        d.register(oid, None)
        d.drop(oid)
        assert oid not in d
        assert d.maybe_get(oid) is None
        d.drop(oid)  # idempotent

    def test_mark_created_on_missing_record_is_noop(self):
        d = make_directory([])
        d.mark_created(ObjectId(9), 10)  # must not raise


class TestReadiness:
    def test_on_ready_fires_immediately_when_created(self):
        d = make_directory([])
        oid = ObjectId(1)
        d.register(oid, None)
        d.mark_created(oid, 1)
        seen = []
        d.on_ready(oid, lambda o, e: seen.append((o, e)))
        assert seen == [(oid, None)]

    def test_on_ready_deferred_until_creation(self):
        d = make_directory([])
        oid = ObjectId(1)
        d.register(oid, None)
        seen = []
        d.on_ready(oid, lambda o, e: seen.append(e))
        assert seen == []
        d.mark_created(oid, 1)
        assert seen == [None]

    def test_on_ready_with_failure(self):
        d = make_directory([])
        oid = ObjectId(1)
        d.register(oid, None)
        seen = []
        d.on_ready(oid, lambda o, e: seen.append(e))
        error = RuntimeError("task died")
        d.mark_failed(oid, error)
        assert seen == [error]
        # Later subscribers observe the stored error immediately.
        late = []
        d.on_ready(oid, lambda o, e: late.append(e))
        assert late == [error]

    def test_recreation_after_mark_uncreated_refires(self):
        d = make_directory([])
        oid = ObjectId(1)
        d.register(oid, None)
        d.mark_created(oid, 1)
        d.mark_uncreated(oid)
        seen = []
        d.on_ready(oid, lambda o, e: seen.append(e))
        assert seen == []
        d.mark_created(oid, 1)
        assert seen == [None]


class TestLocations:
    def test_memory_and_spill_tracking(self):
        d = make_directory([])
        oid = ObjectId(3)
        d.register(oid, None)
        d.mark_created(oid, 10)
        d.add_memory_location(oid, NodeId(0))
        d.add_spill_location(oid, NodeId(1), slot="slot")
        assert d.locations(oid) == {NodeId(0), NodeId(1)}
        assert d.is_available(oid)
        d.remove_memory_location(oid, NodeId(0))
        d.remove_spill_location(oid, NodeId(1))
        assert not d.is_available(oid)
        assert d.get(oid).lost

    def test_location_updates_on_missing_records_are_noops(self):
        d = make_directory([])
        d.add_memory_location(ObjectId(8), NodeId(0))
        d.remove_memory_location(ObjectId(8), NodeId(0))
        d.add_spill_location(ObjectId(8), NodeId(0), None)
        d.remove_spill_location(ObjectId(8), NodeId(0))

    def test_lost_objects_query(self):
        d = make_directory([])
        alive, lost = ObjectId(1), ObjectId(2)
        for oid in (alive, lost):
            d.register(oid, None)
            d.mark_created(oid, 1)
        d.add_memory_location(alive, NodeId(0))
        assert d.lost_objects() == [lost]


class TestRefcounting:
    def test_zero_callback_fires_once_reaching_zero(self):
        zeroed = []
        d = make_directory(zeroed)
        oid = ObjectId(1)
        d.register(oid, None)
        d.incref(oid)
        d.incref(oid)
        d.decref(oid)
        assert zeroed == []
        d.decref(oid)
        assert zeroed == [oid]

    def test_refcounting_missing_records_is_safe(self):
        zeroed = []
        d = make_directory(zeroed)
        d.incref(ObjectId(5))
        d.decref(ObjectId(5))
        assert zeroed == []
