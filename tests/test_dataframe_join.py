"""Distributed and block-level joins."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import seeded_rng
from repro.dataframe import DistributedFrame, FrameBlock

from tests.conftest import make_runtime


class TestBlockJoin:
    def test_inner_join_basic(self):
        left = FrameBlock({"k": np.array([1, 2, 3]), "a": np.array([10, 20, 30])})
        right = FrameBlock({"k": np.array([2, 3, 4]), "b": np.array([200, 300, 400])})
        out = left.join(right, "k")
        assert sorted(out["k"].tolist()) == [2, 3]
        row2 = np.flatnonzero(out["k"] == 2)[0]
        assert out["a"][row2] == 20 and out["b"][row2] == 200

    def test_join_multiplicity(self):
        left = FrameBlock({"k": np.array([1, 1]), "a": np.array([5, 6])})
        right = FrameBlock({"k": np.array([1, 1, 1]), "b": np.array([7, 8, 9])})
        out = left.join(right, "k")
        assert out.num_rows == 6  # 2 x 3 pairs

    def test_join_no_matches(self):
        left = FrameBlock({"k": np.array([1]), "a": np.array([5])})
        right = FrameBlock({"k": np.array([2]), "b": np.array([7])})
        assert left.join(right, "k").num_rows == 0

    def test_join_column_collision_gets_suffix(self):
        left = FrameBlock({"k": np.array([1]), "v": np.array([5])})
        right = FrameBlock({"k": np.array([1]), "v": np.array([7])})
        out = left.join(right, "k")
        assert out["v"][0] == 5
        assert out["v_right"][0] == 7


class TestDistributedJoin:
    def test_join_matches_reference(self):
        rng = seeded_rng(11, "join")
        left_data = {
            "k": rng.integers(0, 30, size=500),
            "a": rng.normal(size=500),
        }
        right_data = {
            "k": np.arange(30),
            "b": rng.normal(size=30),
        }
        rt = make_runtime(num_nodes=3)

        def driver():
            left = DistributedFrame.from_arrays(rt, left_data, 6)
            right = DistributedFrame.from_arrays(rt, right_data, 3)
            joined = left.join(right, "k")
            return joined.collect()

        out = rt.run(driver)
        # every left row matched exactly one right row
        assert out.num_rows == 500
        lookup = {int(k): v for k, v in zip(right_data["k"], right_data["b"])}
        for k, b in zip(out["k"], out["b"]):
            assert b == pytest.approx(lookup[int(k)])

    def test_join_requires_shared_runtime(self):
        rt_a = make_runtime(num_nodes=1)
        rt_b = make_runtime(num_nodes=1)
        fa = rt_a.run(
            lambda: DistributedFrame.from_arrays(rt_a, {"k": np.arange(4)}, 2)
        )
        fb = rt_b.run(
            lambda: DistributedFrame.from_arrays(rt_b, {"k": np.arange(4)}, 2)
        )
        with pytest.raises(ValueError):
            fa.join(fb, "k")


@settings(max_examples=10, deadline=None)
@given(
    n_left=st.integers(min_value=1, max_value=150),
    n_right=st.integers(min_value=1, max_value=150),
    cardinality=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_join_row_count_matches_pair_count(
    n_left, n_right, cardinality, seed
):
    rng = seeded_rng(seed, "jprop")
    left_keys = rng.integers(0, cardinality, size=n_left)
    right_keys = rng.integers(0, cardinality, size=n_right)
    expected_pairs = sum(
        int((left_keys == k).sum()) * int((right_keys == k).sum())
        for k in range(cardinality)
    )
    rt = make_runtime(num_nodes=2)

    def driver():
        left = DistributedFrame.from_arrays(
            rt, {"k": left_keys, "a": rng.normal(size=n_left)}, 3
        )
        right = DistributedFrame.from_arrays(
            rt, {"k": right_keys, "b": rng.normal(size=n_right)}, 2
        )
        return left.join(right, "k").count()

    assert rt.run(driver) == expected_pairs


class TestBroadcastJoin:
    def test_broadcast_matches_shuffle_join(self):
        rng = seeded_rng(21, "bj")
        left_data = {
            "k": rng.integers(0, 12, size=300),
            "a": rng.normal(size=300),
        }
        right_data = {"k": np.arange(12), "b": rng.normal(size=12)}
        rt = make_runtime(num_nodes=2)

        def driver():
            left = DistributedFrame.from_arrays(rt, left_data, 4)
            right = DistributedFrame.from_arrays(rt, right_data, 2)
            shuffled = left.join(right, "k").collect().sort_by("a")
            broadcasted = (
                left.join(right, "k", broadcast=True).collect().sort_by("a")
            )
            return shuffled, broadcasted

        shuffled, broadcasted = rt.run(driver)
        assert shuffled.num_rows == broadcasted.num_rows == 300
        assert np.allclose(shuffled["b"], broadcasted["b"])

    def test_broadcast_join_moves_less_for_small_right(self):
        rng = seeded_rng(22, "bj2")
        left_data = {
            "k": rng.integers(0, 8, size=4000),
            "a": rng.normal(size=4000),
        }
        right_data = {"k": np.arange(8), "b": rng.normal(size=8)}

        def run(broadcast):
            rt = make_runtime(num_nodes=3)

            def driver():
                left = DistributedFrame.from_arrays(rt, left_data, 6)
                right = DistributedFrame.from_arrays(rt, right_data, 2)
                out = left.join(right, "k", broadcast=broadcast)
                out.count()
                return rt.cluster.network_bytes_sent

            return rt.run(driver)

        assert run(True) < run(False)
