"""Advanced runtime behaviours: generators vs bulk returns, retention,
introspection, straggler detection, and scheduler policies."""

import numpy as np
import pytest

from repro.common.units import MB
from repro.futures import Runtime, RuntimeConfig

from tests.conftest import make_runtime


def _blob(mb):
    return np.zeros(int(mb * MB), dtype=np.uint8)


class TestGenerators:
    def test_generator_bounds_peak_memory_vs_bulk_return(self):
        """§4.3.1: a generator stores each yielded block as it is
        produced, so earlier outputs can spill while later ones are still
        being computed; a bulk return materialises everything at once."""

        def run(as_generator):
            rt = make_runtime(num_nodes=1, store_mib=256)

            if as_generator:
                def produce():
                    for _ in range(10):
                        yield _blob(40)
            else:
                def produce():
                    return [_blob(40) for _ in range(10)]

            task = rt.remote(produce, num_returns=10)

            def driver():
                refs = task.remote()
                rt.wait(refs, num_returns=len(refs))
                return True

            rt.run(driver)
            return rt.driver_manager.store.peak_used_bytes

        # Both must complete; the generator's peak footprint is no worse.
        assert run(True) <= run(False)

    def test_generator_outputs_usable_before_task_completes(self):
        rt = make_runtime(num_nodes=1)

        def produce():
            yield "first"
            yield "second"

        slow_tail = rt.remote(produce, num_returns=2, compute=10.0)

        def driver():
            first, second = slow_tail.remote()
            ready, _ = rt.wait([first], num_returns=1)
            t_first = rt.timestamp()
            rt.wait([second], num_returns=1)
            t_second = rt.timestamp()
            return t_first, t_second

        t_first, t_second = rt.run(driver)
        # The first yield lands roughly half a task earlier.
        assert t_first < t_second
        assert t_second - t_first > 2.0


class TestRetention:
    def test_retain_until_keeps_then_releases(self):
        rt = make_runtime(num_nodes=1)
        make = rt.remote(lambda: _blob(1))
        gate = rt.remote(lambda: "done").options(compute=5.0)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            out = gate.remote()
            rt.retain_until([ref], [out])
            del ref  # our own handle gone; retention keeps it alive
            rt.sleep(1.0)
            alive_mid = rt.counters.get("objects_evicted")
            rt.wait([out], num_returns=1)
            rt.sleep(1.0)
            return alive_mid, rt.counters.get("objects_evicted")

        evicted_mid, evicted_end = rt.run(driver)
        assert evicted_mid == 0
        assert evicted_end >= 1

    def test_retain_until_empty_until_releases_immediately(self):
        rt = make_runtime(num_nodes=1)
        make = rt.remote(lambda: 1)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.retain_until([ref], [])
            del ref
            rt.sleep(0.1)
            return rt.counters.get("objects_evicted")

        assert rt.run(driver) >= 1


class TestStragglerDetection:
    def test_wait_timeout_exposes_stragglers(self):
        """§4.3.2: wait with a timeout identifies tasks that have not
        completed, enabling library-level speculative execution."""
        rt = make_runtime(num_nodes=2)
        fast = rt.remote(lambda: "f").options(compute=0.5)
        slow = rt.remote(lambda: "s").options(compute=60.0)

        def driver():
            refs = [fast.remote() for _ in range(6)] + [slow.remote()]
            ready, stragglers = rt.wait(
                refs, num_returns=len(refs), timeout=5.0
            )
            return len(ready), len(stragglers)

        ready, stragglers = rt.run(driver)
        assert ready == 6
        assert stragglers == 1


class TestSchedulerPolicies:
    def test_least_loaded_spreads_independent_tasks(self):
        rt = make_runtime(num_nodes=4)
        work = rt.remote(lambda: 1).options(compute=1.0)

        def driver():
            refs = [work.remote() for _ in range(16)]
            rt.wait(refs, num_returns=len(refs))
            return True

        rt.run(driver)
        # 16 one-second tasks over 4 nodes x 4 cores: near-perfect spread.
        assert rt.now < 1.5

    def test_affinity_beats_locality(self):
        rt = make_runtime(num_nodes=3)
        a, b, c = rt.cluster.node_ids
        make = rt.remote(lambda: _blob(20)).options(node=b)
        probe = rt.remote(lambda x: x.nbytes)

        def driver():
            src = make.remote()
            rt.wait([src], num_returns=1)
            # locality says b, affinity says c: affinity wins.
            pinned = probe.options(node=c).remote(src)
            rt.wait([pinned], num_returns=1)
            return True

        rt.run(driver)
        records = [
            r for r in rt.tasks.values() if r.spec.fn_name == "<lambda>"
            and r.spec.options.node == c
        ]
        assert records and all(r.assigned_node == c for r in records)

    def test_scheduling_error_when_cluster_dead(self):
        rt = make_runtime(num_nodes=1)
        for node in rt.cluster.nodes:
            node.fail()
        work = rt.remote(lambda: 1)

        def driver():
            with pytest.raises(Exception):
                work.remote()
                rt.sleep(1.0)
            return True

        # Submission itself may raise SchedulingError via dispatch.
        try:
            rt.run(driver)
        except Exception:
            pass


class TestPeekAndIntrospection:
    def test_peek_does_not_advance_time_or_charge_io(self):
        rt = make_runtime(num_nodes=2)
        make = rt.remote(lambda: _blob(50))

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            t0 = rt.timestamp()
            value = rt.peek(ref)
            assert rt.timestamp() == t0
            return value.nbytes

        assert rt.run(driver) == 50 * MB

    def test_peek_missing_payload_raises(self):
        from repro.common.errors import ObjectLostError
        from repro.futures.refs import ObjectRef
        from repro.common.ids import ObjectId

        rt = make_runtime(num_nodes=1)
        with pytest.raises(ObjectLostError):
            rt.peek(ObjectRef(ObjectId(999)))

    def test_task_attempts_for_put_object_is_zero(self):
        rt = make_runtime(num_nodes=1)

        def driver():
            ref = rt.put(5)
            return rt.task_attempts(ref)

        assert rt.run(driver) == 0


class TestRuntimeConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RuntimeConfig(cpu_throughput_bytes_per_sec=0)
        with pytest.raises(ValueError):
            RuntimeConfig(task_overhead_s=-1)
        with pytest.raises(ValueError):
            RuntimeConfig(fuse_min_bytes=0)
        with pytest.raises(ValueError):
            RuntimeConfig(prefetch_capacity_fraction=0.0)
        with pytest.raises(ValueError):
            RuntimeConfig(failure_detection_s=-1)

    def test_runtime_requires_shared_environment(self):
        from repro.cluster import Cluster
        from repro.simcore import Environment
        from tests.conftest import make_node_spec

        cluster = Cluster.homogeneous(Environment(), make_node_spec(), 1)
        with pytest.raises(ValueError):
            Runtime(cluster, env=Environment())
