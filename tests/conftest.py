"""Shared fixtures: small clusters and runtimes for unit tests."""

from typing import List

import pytest

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.units import GIB, MIB
from repro.futures import Runtime, RuntimeConfig

#: Registries currently collecting runtimes for post-test invariant
#: checking; ``make_runtime`` appends every runtime it builds to each
#: active registry (see the ``check_invariants`` fixture).
_active_invariant_registries: List[List[Runtime]] = []


def make_node_spec(
    cores: int = 4,
    memory_gib: int = 8,
    store_mib: int = 2048,
    disk_mb_s: float = 200.0,
    seek_ms: float = 5.0,
    nic_mb_s: float = 125.0,
) -> NodeSpec:
    return NodeSpec(
        name="test-node",
        cores=cores,
        memory_bytes=memory_gib * GIB,
        object_store_bytes=store_mib * MIB,
        disk=DiskSpec(
            bandwidth_bytes_per_sec=disk_mb_s * 1e6, seek_latency_s=seek_ms * 1e-3
        ),
        nic=NicSpec(bandwidth_bytes_per_sec=nic_mb_s * 1e6),
    )


def make_runtime(
    num_nodes: int = 2, config: RuntimeConfig = None, **spec_kwargs
) -> Runtime:
    runtime = Runtime.create(
        make_node_spec(**spec_kwargs), num_nodes, config=config or RuntimeConfig()
    )
    for registry in _active_invariant_registries:
        registry.append(runtime)
    return runtime


@pytest.fixture
def rt() -> Runtime:
    return make_runtime()


@pytest.fixture
def rt_single() -> Runtime:
    return make_runtime(num_nodes=1)


@pytest.fixture
def check_invariants():
    """Opt-in: validate every runtime the test built, after it passes.

    Apply with ``pytestmark = pytest.mark.usefixtures("check_invariants")``
    (or per-test).  After the test body returns, each runtime created via
    :func:`make_runtime` is drained to quiesce and run through the chaos
    layer's :class:`~repro.chaos.InvariantChecker`; any violation (leaked
    refcounts, inconsistent locations, unreconstructable live objects,
    stuck tasks) fails the test.
    """
    from repro.chaos import InvariantChecker

    registry: List[Runtime] = []
    _active_invariant_registries.append(registry)
    try:
        yield
    finally:
        _active_invariant_registries.remove(registry)
    for runtime in registry:
        runtime.env.run()  # drain pending recoveries/timers to quiesce
        violations = InvariantChecker(runtime).check()
        assert not violations, (
            f"invariant violations after test: {violations[:10]}"
        )
