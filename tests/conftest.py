"""Shared fixtures: small clusters and runtimes for unit tests."""

import pytest

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.units import GIB, MIB
from repro.futures import Runtime, RuntimeConfig


def make_node_spec(
    cores: int = 4,
    memory_gib: int = 8,
    store_mib: int = 2048,
    disk_mb_s: float = 200.0,
    seek_ms: float = 5.0,
    nic_mb_s: float = 125.0,
) -> NodeSpec:
    return NodeSpec(
        name="test-node",
        cores=cores,
        memory_bytes=memory_gib * GIB,
        object_store_bytes=store_mib * MIB,
        disk=DiskSpec(
            bandwidth_bytes_per_sec=disk_mb_s * 1e6, seek_latency_s=seek_ms * 1e-3
        ),
        nic=NicSpec(bandwidth_bytes_per_sec=nic_mb_s * 1e6),
    )


def make_runtime(
    num_nodes: int = 2, config: RuntimeConfig = None, **spec_kwargs
) -> Runtime:
    return Runtime.create(
        make_node_spec(**spec_kwargs), num_nodes, config=config or RuntimeConfig()
    )


@pytest.fixture
def rt() -> Runtime:
    return make_runtime()


@pytest.fixture
def rt_single() -> Runtime:
    return make_runtime(num_nodes=1)
