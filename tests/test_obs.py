"""The observability plane: event bus, causal tracing, dimensioned metrics.

Covers the ISSUE-3 acceptance surface:

- event ordering under the simulated clock (``seq`` total order,
  non-decreasing ``ts``) and taxonomy enforcement;
- causal parent links in the derived trace match the runtime's lineage
  (and, under chaos, a killed task's retry chains back to the fault);
- per-node/per-job metric dimensions sum exactly to globals (the new
  :class:`~repro.chaos.InvariantChecker` family);
- Chrome-trace schema validation (complete/metadata/instant/flow events);
- JSONL round-trips, metric snapshot/delta, Counters merge/snapshot, and
  the run reporter's sections.
"""

import json

import pytest

from repro.chaos import FaultKind, InvariantChecker, matrix_plan
from repro.chaos.harness import expected_output, make_inputs, submit_variant
from repro.chaos.injector import ChaosInjector
from repro.common.units import MIB
from repro.futures import RetryPolicy, RuntimeConfig
from repro.metrics import Counters, export_chrome_trace, task_spans
from repro.obs import (
    EVENT_KINDS,
    EventBus,
    GLOBAL_DIM,
    MetricRegistry,
    RunReport,
    derive_spans,
    record_run,
    span_chrome_events,
)
from repro.obs.trace import lineage_parents

from tests.conftest import make_runtime


def _chain_runtime():
    """A two-stage pipeline (map -> combine) on a fresh runtime."""
    rt = make_runtime(num_nodes=2)

    @rt.remote(compute=0.05)
    def produce(i):
        return [i, i + 1]

    @rt.remote(compute=0.05)
    def combine(*parts):
        return sorted(x for part in parts for x in part)

    def driver():
        parts = [produce.remote(i) for i in range(4)]
        return rt.get(combine.remote(*parts))

    result = rt.run(driver)
    assert result == [0, 1, 1, 2, 2, 3, 3, 4]
    return rt


def _chaos_runtime(seed=0):
    """The acceptance scenario: push shuffle with a node crash mid-run."""
    rt = make_runtime(
        num_nodes=4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=seed))
    inputs = make_inputs(seed, 8, 24)
    values = rt.run(lambda: rt.get(submit_variant("push", rt, inputs, 4)))
    rt.env.run()  # drain the scheduled node restart
    assert tuple(tuple(v) for v in values) == expected_output(seed)
    return rt


class TestEventBus:
    def test_seq_is_a_total_order_and_ts_non_decreasing(self):
        rt = _chain_runtime()
        events = rt.bus.events
        assert len(events) > 20
        assert [e.seq for e in events] == list(range(len(events)))
        for before, after in zip(events, events[1:]):
            assert after.ts >= before.ts  # simulated clock is monotonic

    def test_unknown_kind_is_rejected_until_registered(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("made.up")
        bus.register_kind("made.up", "test kind")
        assert bus.emit("made.up").kind == "made.up"

    def test_disabled_bus_emits_nothing(self):
        bus = EventBus(enabled=False)
        assert bus.emit("task.submit") is None
        assert len(bus) == 0

    def test_subscribers_stream_events(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        first = bus.emit("chaos.fault", node="N0")
        unsubscribe()
        bus.emit("node.death", node="N0", cause=first.seq)
        assert [e.kind for e in seen] == ["chaos.fault"]

    def test_events_of_matches_prefix_and_exact_kind(self):
        rt = _chain_runtime()
        tasks = rt.bus.events_of("task")
        assert tasks and all(e.kind.startswith("task.") for e in tasks)
        assert all(
            e.kind == "task.submit" for e in rt.bus.events_of("task.submit")
        )

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        rt = _chain_runtime()
        path = tmp_path / "events.jsonl"
        written = rt.bus.to_jsonl(str(path))
        loaded = EventBus.load_jsonl(str(path))
        assert written == len(rt.bus.events) == len(loaded)
        assert loaded == rt.bus.events

    def test_every_emitted_kind_is_in_the_taxonomy(self):
        rt = _chaos_runtime()
        assert {e.kind for e in rt.bus.events} <= set(EVENT_KINDS)


class TestCausality:
    def test_lineage_parents_match_runtime_truth(self):
        rt = _chain_runtime()
        derived = lineage_parents(rt.bus.events)
        for task_id, record in rt.tasks.items():
            truth = set()
            for dep in record.spec.dependency_ids:
                creator = rt._object_creator.get(dep)
                if creator is not None:
                    truth.add(str(creator))
            assert set(derived.get(str(task_id), [])) == truth

    def test_retry_chains_back_to_the_injected_fault(self):
        rt = _chaos_runtime()
        retries = rt.bus.events_of("task.retry")
        assert retries
        for retry in retries:
            kinds = [e.kind for e in rt.bus.causal_chain(retry)]
            assert "node.death" in kinds and "chaos.fault" in kinds

    def test_reexecuted_attempt_span_parents_the_retry(self):
        rt = _chaos_runtime()
        retry_seqs = {e.seq for e in rt.bus.events_of("task.retry")}
        spans = derive_spans(rt.bus.events)
        retried = [
            s for s in spans if s.cat == "task" and s.parent in retry_seqs
        ]
        assert retried
        for span in retried:
            assert span.attrs["attempt"] >= 2

    def test_paired_spans_link_end_to_begin(self):
        rt = make_runtime(num_nodes=2, store_mib=4)

        @rt.remote(compute=0.01)
        def blob():
            return bytes(MIB)

        rt.run(lambda: rt.get([blob.remote() for _ in range(10)]))
        rt.env.run()
        spans = derive_spans(rt.bus.events)
        spill_spans = [s for s in spans if s.cat == "spill"]
        assert spill_spans
        index = rt.bus.by_seq()
        for span in spill_spans:
            begin = index[span.parent]
            assert begin.kind.endswith(".begin")
            assert begin.ts == span.start


class TestMetricDimensions:
    def test_per_job_counter_axes_sum_to_globals(self):
        rt = make_runtime(num_nodes=2)

        @rt.remote(compute=0.01)
        def unit():
            return 1

        def job_body():
            return sum(rt.get([unit.remote() for _ in range(5)]))

        def driver():
            handles = [
                rt.spawn_driver(job_body, name=label, label=label)
                for label in ("alpha", "beta")
            ]
            return [rt.join_driver(h) for h in handles]

        assert rt.run(driver) == [5, 5]
        by_job = rt.metrics.counter_by("tasks_finished", "job")
        assert sum(by_job.values()) == rt.metrics.counter_total(
            "tasks_finished"
        )
        assert by_job["alpha"] == by_job["beta"] == 5
        violations = [
            v for v in InvariantChecker(rt).check() if v.startswith("metric")
        ]
        assert violations == []

    def test_invariant_family_catches_lockstep_drift(self):
        rt = _chain_runtime()
        name = rt.metrics.counter_names()[0]
        # Corrupt one dimension bucket behind the registry's back.
        rt.metrics._counters[name]["job"] = {"rogue": 123.0}
        violations = [
            v for v in InvariantChecker(rt).check() if v.startswith("metric")
        ]
        assert violations and name in violations[0]

    def test_registry_snapshot_and_delta(self):
        reg = MetricRegistry()
        reg.counter("bytes", 10, node="N0", job="j1")
        before = reg.snapshot()
        reg.counter("bytes", 5, node="N1", job="j1")
        reg.gauge_set("occupancy", 7.0, node="N0")
        reg.observe("latency", 0.25, job="j1")
        snap = reg.snapshot()
        assert snap["counters"]["bytes"][GLOBAL_DIM][GLOBAL_DIM] == 15
        assert snap["counters"]["bytes"]["node"] == {"N0": 10.0, "N1": 5.0}
        assert snap["gauges"]["occupancy"][GLOBAL_DIM][GLOBAL_DIM] == 7.0
        assert snap["histograms"]["latency[job=j1]"]["count"] == 1.0
        moved = reg.delta(before)
        assert moved["counters"]["bytes"][GLOBAL_DIM][GLOBAL_DIM] == 5
        assert moved["counters"]["bytes"]["node"] == {"N1": 5.0}
        assert "job" not in moved["counters"]["bytes"] or moved["counters"][
            "bytes"
        ]["job"] == {"j1": 5.0}

    def test_counters_snapshot_and_merge(self):
        a = Counters()
        a.add("x", 2)
        assert a.snapshot() == a.as_dict() == {"x": 2.0}
        b = Counters()
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a.as_dict() == {"x": 5.0, "y": 1.0}


class TestChromeTraceSchema:
    REQUIRED = {
        "X": {"name", "cat", "pid", "tid", "ts", "dur"},
        "M": {"name", "pid", "args"},
        "i": {"name", "ph", "pid", "tid", "ts", "s"},
        "s": {"name", "id", "pid", "tid", "ts"},
        "f": {"name", "id", "pid", "tid", "ts"},
    }

    def test_all_events_carry_their_required_keys(self):
        rt = _chaos_runtime()
        trace = span_chrome_events(rt.bus.events)
        assert trace
        for event in trace:
            ph = event["ph"]
            assert ph in self.REQUIRED, f"unexpected phase {ph!r}"
            missing = self.REQUIRED[ph] - set(event)
            assert not missing, f"{ph} event missing {missing}"
            if ph in ("X", "i", "s", "f"):
                assert isinstance(event["pid"], int)
                assert isinstance(event["tid"], int)
                assert event["ts"] >= 0
            if ph == "X":
                assert event["dur"] >= 0

    def test_flow_arrows_pair_start_and_finish_by_id(self):
        rt = _chaos_runtime()
        trace = span_chrome_events(rt.bus.events)
        starts = {e["id"] for e in trace if e["ph"] == "s"}
        finishes = {e["id"] for e in trace if e["ph"] == "f"}
        assert finishes and finishes <= starts

    def test_timeline_export_includes_io_spans_and_job_ids(self, tmp_path):
        rt = make_runtime(num_nodes=2, store_mib=4)

        @rt.remote(compute=0.01)
        def blob():
            return bytes(MIB)

        def driver():
            handle = rt.spawn_driver(
                lambda: rt.get([blob.remote() for _ in range(10)]),
                name="spiller",
                label="spiller",
            )
            return rt.join_driver(handle)

        rt.run(driver)
        rt.env.run()
        assert all(s["job_id"] == "spiller" for s in task_spans(rt))
        path = tmp_path / "trace.json"
        export_chrome_trace(rt, str(path))
        events = json.loads(path.read_text())["traceEvents"]
        cats = {e.get("cat") for e in events}
        assert "spill" in cats  # bus-derived I/O rides along with tasks
        assert all(
            e["args"]["job_id"] == "spiller"
            for e in events
            if e.get("cat") == "task"
        )


class TestRunReport:
    def test_report_round_trips_and_renders_all_sections(self, tmp_path):
        rt = _chaos_runtime()
        path = tmp_path / "run.jsonl"
        record_run(rt, str(path))
        report = RunReport.load(str(path))
        rendered = report.render()
        for section in ("Phase breakdown", "Slowest tasks",
                        "Fault / retry timeline"):
            assert section in rendered
        assert "chaos.fault" in rendered

    def test_per_job_spill_bytes_sum_to_global(self, tmp_path):
        rt = make_runtime(num_nodes=2, store_mib=4)

        @rt.remote(compute=0.01)
        def blob():
            return bytes(MIB)

        def driver():
            handles = [
                rt.spawn_driver(
                    lambda: rt.get([blob.remote() for _ in range(6)]),
                    name=label,
                    label=label,
                )
                for label in ("tenant-a", "tenant-b")
            ]
            return [rt.join_driver(h) for h in handles]

        rt.run(driver)
        rt.env.run()
        path = tmp_path / "run.jsonl"
        record_run(rt, str(path))
        report = RunReport.load(str(path))
        per_job = report.per_job_spill_bytes()
        total = report.summary["stats"]["spill_bytes_written"]
        assert total > 0
        assert sum(per_job.values()) == total
