"""Text chart rendering."""

import pytest

from repro.metrics.ascii_charts import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart("JCT", ["a", "b"], [10.0, 20.0], width=20)
        lines = text.splitlines()
        bar_a = lines[2].count("#")
        bar_b = lines[3].count("#")
        assert bar_b == 20 and bar_a == 10
        assert "10.0s" in lines[2] and "20.0s" in lines[3]

    def test_zero_values_render(self):
        text = bar_chart("t", ["x"], [0.0])
        assert "0.0" in text

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty_chart_is_title(self):
        assert bar_chart("just title", [], []) == "just title"


class TestGroupedBarChart:
    def test_groups_by_x_value(self):
        text = grouped_bar_chart(
            "fig",
            {"simple": {100: 10.0, 200: 20.0}, "push": {100: 8.0}},
        )
        assert "[100]" in text and "[200]" in text
        assert text.index("[100]") < text.index("[200]")
        # push appears once (missing at 200)
        assert text.count("push") == 1

    def test_unit_suffix(self):
        text = grouped_bar_chart("f", {"s": {1: 5.0}}, unit="GB")
        assert "5.0GB" in text


class TestLineChart:
    def test_plots_every_series_with_distinct_markers(self):
        text = line_chart(
            "errors",
            {
                "stream": [(0.0, 1.0), (5.0, 0.5), (10.0, 0.1)],
                "batch": [(10.0, 0.05)],
            },
        )
        assert "*" in text and "+" in text
        assert "legend" in text
        assert "stream" in text and "batch" in text

    def test_empty_series_is_title(self):
        assert line_chart("empty", {}) == "empty"

    def test_single_point_does_not_crash(self):
        text = line_chart("p", {"only": [(1.0, 1.0)]})
        assert "only" in text
