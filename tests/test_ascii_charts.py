"""Text chart rendering."""

import pytest

from repro.metrics.ascii_charts import (
    SPARK_BLOCKS,
    bar_chart,
    braille_line_chart,
    gauge,
    grouped_bar_chart,
    line_chart,
    sparkline,
)


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart("JCT", ["a", "b"], [10.0, 20.0], width=20)
        lines = text.splitlines()
        bar_a = lines[2].count("#")
        bar_b = lines[3].count("#")
        assert bar_b == 20 and bar_a == 10
        assert "10.0s" in lines[2] and "20.0s" in lines[3]

    def test_zero_values_render(self):
        text = bar_chart("t", ["x"], [0.0])
        assert "0.0" in text

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty_chart_is_title(self):
        assert bar_chart("just title", [], []) == "just title"

    def test_mixed_width_labels_align_into_columns(self):
        text = bar_chart(
            "t", ["a", "tenant-long", "b"], [1.0, 2.0, 300.0], width=10
        )
        lines = text.splitlines()[2:]
        # Labels right-align into one column: every bar starts at the
        # same offset, and every value ends at the same offset.
        assert len({line.index("|") for line in lines}) == 1
        assert len({len(line) for line in lines}) == 1

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0], width=0)
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0], width=-3)


class TestSparkline:
    def test_maps_range_onto_the_block_ramp(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(text) == 4
        assert text[0] == SPARK_BLOCKS[0] and text[-1] == SPARK_BLOCKS[-1]

    def test_explicit_bounds_clamp(self):
        # With a shared hi, a saturated sample renders full regardless
        # of the series' own max; overshoot clamps instead of wrapping.
        assert sparkline([4.0, 8.0], lo=0.0, hi=4.0) == (
            SPARK_BLOCKS[-1] * 2
        )

    def test_flat_series_renders_lowest_block(self):
        assert sparkline([2.0, 2.0, 2.0]) == SPARK_BLOCKS[0] * 3

    def test_empty_is_empty(self):
        assert sparkline([]) == ""


class TestGauge:
    def test_fill_fraction_and_percent(self):
        text = gauge(1.0, 4.0, width=8)
        assert text == "[##......]  25%"

    def test_overfull_clamps_at_100(self):
        assert gauge(10.0, 4.0, width=4) == "[####] 100%"

    def test_zero_maximum_is_empty_not_division_error(self):
        assert gauge(3.0, 0.0, width=4) == "[....]   0%"

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            gauge(1.0, 2.0, width=0)


class TestBrailleLineChart:
    def test_plots_within_braille_range(self):
        text = braille_line_chart(
            "track", {"cpu": [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]}
        )
        dots = [
            ch for ch in text if 0x2800 < ord(ch) <= 0x28FF
        ]
        assert dots, "the chart must contain braille dot characters"
        assert "legend: cpu" in text

    def test_empty_series_is_title(self):
        assert braille_line_chart("empty", {}) == "empty"

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            braille_line_chart("t", {"s": [(0.0, 1.0)]}, width=0)
        with pytest.raises(ValueError):
            braille_line_chart("t", {"s": [(0.0, 1.0)]}, height=0)


class TestGroupedBarChart:
    def test_groups_by_x_value(self):
        text = grouped_bar_chart(
            "fig",
            {"simple": {100: 10.0, 200: 20.0}, "push": {100: 8.0}},
        )
        assert "[100]" in text and "[200]" in text
        assert text.index("[100]") < text.index("[200]")
        # push appears once (missing at 200)
        assert text.count("push") == 1

    def test_unit_suffix(self):
        text = grouped_bar_chart("f", {"s": {1: 5.0}}, unit="GB")
        assert "5.0GB" in text


class TestLineChart:
    def test_plots_every_series_with_distinct_markers(self):
        text = line_chart(
            "errors",
            {
                "stream": [(0.0, 1.0), (5.0, 0.5), (10.0, 0.1)],
                "batch": [(10.0, 0.05)],
            },
        )
        assert "*" in text and "+" in text
        assert "legend" in text
        assert "stream" in text and "batch" in text

    def test_empty_series_is_title(self):
        assert line_chart("empty", {}) == "empty"

    def test_single_point_does_not_crash(self):
        text = line_chart("p", {"only": [(1.0, 1.0)]})
        assert "only" in text
