"""The live ops plane: sampler replay parity, the golden series digest,
deterministic dashboard frames, and the offline HTML run explorer.

The load-bearing contract is *exact last-sample semantics*: a sampler
attached live to the bus and a sampler replaying the recorded JSONL
must produce bit-for-bit identical series.  The Hypothesis property
checks it for arbitrary sampling intervals over a chaos run, and the
golden digest pins the Fig 4c sort recipe so a semantics change cannot
slip through as "both sides drifted the same way".
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.harness import (
    default_node_spec,
    make_inputs,
    submit_variant,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.spec import FaultKind, matrix_plan
from repro.common.units import MB
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.obs.events import EventBus
from repro.obs.live import (
    LiveDashboard,
    TimeSeriesSampler,
    render_html,
    replay_frames,
)
from repro.obs.live.sampler import SeriesRing
from repro.obs.report import RunReport, record_run
from repro.sort import SortJobConfig, run_sort

from tests.conftest import make_runtime

#: Live series digest of the Fig 4c sort recipe below (deterministic
#: simulated run, default 0.25s interval).  Captured once from the
#: initial implementation; replay of the recorded JSONL must reproduce
#: it exactly, and any change to the sampling semantics must re-bless it
#: knowingly.
GOLDEN_FIG4C_SERIES_DIGEST = (
    "8fad05a414176afde7707c9e8214a84d24bfe15fdce96f6b4394f2ebc3e9e355"
)


def _chaos_run(sampler=None, record_path=None):
    """The smoke workload: a push shuffle under an injected node crash.

    Attaches ``sampler`` live (before any work runs) when given, and
    records the run to ``record_path`` when given.  Deterministic for a
    fixed seed, so two invocations see identical event streams.
    """
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    if sampler is not None:
        rt.attach_sampler(sampler)
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=0))
    inputs = make_inputs(0, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    rt.run(driver)
    rt.env.run()  # drain the node restart
    if record_path is not None:
        record_run(rt, str(record_path))
    if sampler is not None:
        sampler.finish()
    return rt


class TestSeriesRing:
    def test_push_and_values(self):
        ring = SeriesRing(4)
        for v in (1.0, 2.0, 3.0):
            ring.push(v)
        assert ring.values() == [1.0, 2.0, 3.0]
        assert ring.last == 3.0
        assert ring.start == 0
        assert len(ring) == 3

    def test_wraparound_advances_start(self):
        ring = SeriesRing(3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            ring.push(v)
        assert ring.values() == [3.0, 4.0, 5.0]
        assert ring.start == 2

    def test_empty_last_is_zero(self):
        assert SeriesRing(2).last == 0.0


class TestSamplerSemantics:
    def _bus(self):
        state = {"now": 0.0}
        bus = EventBus(clock=lambda: state["now"])
        return bus, state

    def test_boundaries_are_t0_plus_k_intervals(self):
        bus, state = self._bus()
        sampler = TimeSeriesSampler(interval_s=1.0)
        bus.subscribe(sampler.on_event)
        state["now"] = 0.5
        bus.emit("task.submit", task="t1", job="j")
        state["now"] = 2.7
        bus.emit("task.run", task="t1", node="n0")
        sampler.finish(end=3.5)
        ring = sampler.get("cluster:inflight")
        # Boundaries at 1.5, 2.5, 3.5: inflight=1 throughout.
        assert sampler.t0 == 0.5
        assert sampler.samples_taken == 3
        assert ring.values() == [1.0, 1.0, 1.0]
        assert sampler.sample_times(ring) == [1.5, 2.5, 3.5]

    def test_event_on_boundary_belongs_to_that_sample(self):
        bus, state = self._bus()
        sampler = TimeSeriesSampler(interval_s=1.0)
        bus.subscribe(sampler.on_event)
        bus.emit("task.submit", task="t1", job="j")
        state["now"] = 1.0  # exactly on the t0+1*interval boundary
        bus.emit("task.submit", task="t2", job="j")
        sampler.finish(end=1.0)
        # The boundary-coincident submit counts in the boundary's sample.
        assert sampler.get("cluster:inflight").values() == [2.0]

    def test_finish_flushes_trailing_boundaries(self):
        bus, state = self._bus()
        sampler = TimeSeriesSampler(interval_s=0.5)
        bus.subscribe(sampler.on_event)
        bus.emit("task.submit", task="t1", job="j")
        sampler.finish(end=2.0)
        assert sampler.samples_taken == 4  # 0.5, 1.0, 1.5, 2.0
        assert sampler.t_end == 2.0

    def test_finish_is_idempotent_and_closes_the_sampler(self):
        bus, _state = self._bus()
        sampler = TimeSeriesSampler(interval_s=1.0)
        bus.subscribe(sampler.on_event)
        event = bus.emit("task.submit", task="t1", job="j")
        assert sampler.finish(end=5.0) == sampler.finish(end=99.0) == 5.0
        with pytest.raises(RuntimeError):
            sampler.on_event(event)

    def test_late_born_series_backfills_zeros(self):
        bus, state = self._bus()
        sampler = TimeSeriesSampler(interval_s=1.0)
        bus.subscribe(sampler.on_event)
        bus.emit("task.submit", task="t1", job="j")
        state["now"] = 3.2
        bus.emit("chaos.fault", node="n0", fault="node_crash")
        sampler.finish(end=4.0)
        faults = sampler.get("cluster:faults")
        # Born at the 4th boundary; zero-aligned with the older series.
        assert faults.values() == [0.0, 0.0, 0.0, 1.0]
        assert len(faults) == len(sampler.get("cluster:inflight"))

    def test_stall_rate_resets_every_interval(self):
        bus, state = self._bus()
        sampler = TimeSeriesSampler(interval_s=1.0)
        bus.subscribe(sampler.on_event)
        bus.emit("job.submit", job="j", tenant="a")
        bus.emit("stream.backpressure", job="j", reason="window")
        bus.emit("stream.backpressure", job="j", reason="window")
        state["now"] = 2.5
        bus.emit("stream.backpressure", job="j", reason="window")
        sampler.finish(end=3.0)
        # Interval 1: two stalls; interval 2: none; interval 3: one.
        assert sampler.get("cluster:stall_rate").values() == [2.0, 0.0, 1.0]
        assert sampler.current("cluster:stalls") == 3.0
        assert sampler.get("tenant:a:stalls").last == 3.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(interval_s=0.0)


class TestLiveReplayParity:
    def test_live_and_replay_digests_match(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        live = TimeSeriesSampler()
        _chaos_run(sampler=live, record_path=path)
        replayed = TimeSeriesSampler.replay_file(str(path))
        assert live.series_digest() == replayed.series_digest()
        assert live.samples_taken == replayed.samples_taken
        assert live.samples_taken > 0 and len(live.series) > 0
        # Full structural equality, not just the digest.  Two fields
        # legitimately differ: capacities arrive at attach time live but
        # via the trailing run.summary on replay, and that synthetic
        # summary record itself is never published on the live bus, so
        # the replay side sees one more event.
        live_d, replay_d = live.to_dict(), replayed.to_dict()
        for volatile in ("capacities", "events_seen"):
            live_d.pop(volatile)
            replay_d.pop(volatile)
        assert live_d == replay_d

    @settings(max_examples=6, deadline=None)
    @given(
        interval_s=st.floats(
            min_value=0.05,
            max_value=3.0,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    def test_parity_holds_for_arbitrary_intervals(self, interval_s):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "run.events.jsonl"
            live = TimeSeriesSampler(interval_s=interval_s)
            _chaos_run(sampler=live, record_path=path)
            replayed = TimeSeriesSampler.replay_file(
                str(path), interval_s=interval_s
            )
        assert live.series_digest() == replayed.series_digest()

    def test_feed_chains_fault_to_retry(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        live = TimeSeriesSampler()
        _chaos_run(sampler=live, record_path=path)
        retries = [e for e in live.feed if e.kind == "task.retry"]
        assert retries, "the injected crash must surface retries"
        assert any("node.death" in e.render() for e in retries), (
            "retry feed entries must chain back to the killing event"
        )
        replayed = TimeSeriesSampler.replay_file(str(path))
        assert [e.to_dict() for e in live.feed] == [
            e.to_dict() for e in replayed.feed
        ]


def _fig4c_sort_events():
    """The golden-digest recipe: the Fig 4c-style fixed-seed in-memory
    sort with store pressure (same shape as ``test_policy_golden``)."""
    rt = make_runtime(num_nodes=3, store_mib=256)
    sampler = TimeSeriesSampler()
    rt.attach_sampler(sampler)
    result = run_sort(
        rt,
        SortJobConfig(
            variant="push*",
            num_partitions=12,
            partition_bytes=30 * MB,
            virtual=True,
        ),
    )
    assert result.validated
    sampler.finish()
    return sampler


def test_fig4c_series_digest_is_golden():
    assert _fig4c_sort_events().series_digest() == GOLDEN_FIG4C_SERIES_DIGEST


class TestDashboard:
    def test_replay_frames_is_deterministic(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        _chaos_run(sampler=TimeSeriesSampler(), record_path=path)
        events = EventBus.load_jsonl(str(path))
        first = replay_frames(events, frames=3)
        second = replay_frames(events, frames=3)
        assert first == second
        assert len(first) == 3

    def test_frames_contain_every_panel(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        _chaos_run(sampler=TimeSeriesSampler(), record_path=path)
        events = EventBus.load_jsonl(str(path))
        final = replay_frames(events, frames=2)[-1]
        for marker in (
            "== repro live ops ==",
            "-- node utilization ",
            "tenant fair share",
            "-- pressure ",
            "-- fault feed ",
        ):
            assert marker in final
        assert "inflight tasks 0" in final  # the run drained

    def test_pluggable_clock_pins_the_header(self):
        sampler = TimeSeriesSampler()
        dashboard = LiveDashboard(sampler, clock=lambda: 42.5)
        frame = dashboard.render_frame()
        assert "t=42.500s" in frame
        assert dashboard.frames_rendered == 1

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            LiveDashboard(TimeSeriesSampler(), window=0)
        with pytest.raises(ValueError):
            replay_frames([], frames=0)


class TestHtmlExplorer:
    def test_explorer_is_one_offline_file(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        _chaos_run(sampler=TimeSeriesSampler(), record_path=path)
        events = EventBus.load_jsonl(str(path))
        html = render_html(events, title="chaos run")
        # Self-contained: inline script/style only, nothing fetched.
        assert html.count("<script") == 1 and "<script src=" not in html
        assert html.count("<style") == 1 and "<link" not in html
        stripped = html.replace("http://www.w3.org/2000/svg", "")
        assert "http://" not in stripped and "https://" not in stripped
        for section in (
            "Per-node utilization",
            "Tenant fair share",
            "Spill pressure",
            "backpressure",
            "Critical path",
            "Phase table",
        ):
            assert section.lower() in html.lower(), section

    def test_embedded_data_round_trips_as_json(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        _chaos_run(sampler=TimeSeriesSampler(), record_path=path)
        events = EventBus.load_jsonl(str(path))
        html = render_html(events, title="chaos run")
        blob = html.split("const DATA = ", 1)[1].split(";\n", 1)[0]
        data = json.loads(blob.replace("<\\/", "</"))
        assert data["title"] == "chaos run"
        assert data["sampler"]["series"], "sampled series must be embedded"
        assert data["report"]["events"] == len(events)
        assert data["critpath"]["categories"]


class TestRunReportDict:
    def test_to_dict_matches_the_rendered_report(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        _chaos_run(sampler=TimeSeriesSampler(), record_path=path)
        report = RunReport(EventBus.load_jsonl(str(path)))
        data = report.to_dict()
        assert data["events"] == len(report.events)
        assert data["phase_table"]["rows"], "phase rows must be present"
        assert json.dumps(data)  # JSON-serializable end to end
        # The fault timeline survives the dict conversion with chains.
        assert any(
            "chaos.fault" in line for line in data["fault_timeline"]
        )
