"""Dask-style task graphs on the futures backend."""

import numpy as np
import pytest

from repro.graphs import GraphError, TaskGraph, execute_graph

from tests.conftest import make_runtime


def inc(x):
    return x + 1


def add(x, y):
    return x + y


class TestGraphStructure:
    def test_topological_order_respects_deps(self):
        graph = TaskGraph({"a": 1, "b": (inc, "a"), "c": (add, "a", "b")})
        order = graph.order
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        with pytest.raises(GraphError, match="cycle"):
            TaskGraph({"a": (inc, "b"), "b": (inc, "a")})

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph({})

    def test_non_key_strings_are_plain_args(self):
        graph = TaskGraph({"x": (str.upper, "hello")})
        assert graph.dependencies("x") == []


class TestExecution:
    def test_linear_chain(self):
        rt = make_runtime(num_nodes=2)
        graph = {"a": 1, "b": (inc, "a"), "c": (inc, "b"), "d": (inc, "c")}
        assert rt.run(lambda: execute_graph(rt, graph, "d")) == 4

    def test_diamond(self):
        rt = make_runtime(num_nodes=2)
        graph = {
            "src": 10,
            "left": (inc, "src"),
            "right": (lambda x: x * 2, "src"),
            "sink": (add, "left", "right"),
        }
        assert rt.run(lambda: execute_graph(rt, graph, "sink")) == 31

    def test_multiple_targets_and_literal_target(self):
        rt = make_runtime(num_nodes=1)
        graph = {"a": 5, "b": (inc, "a")}
        values = rt.run(lambda: execute_graph(rt, graph, ["b", "a"]))
        assert values == [6, 5]

    def test_unknown_target_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(GraphError):
            rt.run(lambda: execute_graph(rt, {"a": 1}, "zzz"))

    def test_wide_fan_out_runs_in_parallel(self):
        rt = make_runtime(num_nodes=2, cores=4)
        work = lambda x: x  # noqa: E731
        graph = {"root": 0}
        for i in range(16):
            graph[f"leaf{i}"] = (work, "root")
        graph["sink"] = (lambda *xs: len(xs), *[f"leaf{i}" for i in range(16)])
        # Apply a fixed compute cost by wrapping: use options via manual graph
        assert rt.run(lambda: execute_graph(rt, graph, "sink")) == 16

    def test_map_reduce_expressed_as_graph(self):
        """MapReduce as a literal graph -- the CIEL/Dask lineage the paper
        builds on (§6)."""
        rt = make_runtime(num_nodes=2)
        rng = np.random.default_rng(0)
        parts = [rng.integers(0, 100, size=50) for _ in range(4)]
        graph = {}
        for i, part in enumerate(parts):
            graph[f"input{i}"] = part
            graph[f"sum{i}"] = (np.sum, f"input{i}")
        graph["total"] = (
            lambda *sums: int(sum(sums)),
            *[f"sum{i}" for i in range(4)],
        )
        expected = int(sum(int(p.sum()) for p in parts))
        assert rt.run(lambda: execute_graph(rt, graph, "total")) == expected
