"""Object store, spilling, write fusing, prefetching, and GC behaviour."""

import numpy as np
import pytest

from repro.common.units import MB, MIB
from repro.futures import RuntimeConfig

from tests.conftest import make_runtime


def _blob(mb):
    """A payload of ``mb`` megabytes."""
    return np.zeros(int(mb * MB), dtype=np.uint8)


class TestSpilling:
    def test_overflow_spills_to_disk(self):
        """Creating 3x the store capacity must spill, not fail."""
        rt = make_runtime(num_nodes=1, store_mib=64)
        make = rt.remote(lambda: _blob(16))

        def driver():
            refs = [make.remote() for _ in range(12)]  # 192 MB into 64 MiB
            ready, _ = rt.wait(refs, num_returns=len(refs))
            return len(ready)

        assert rt.run(driver) == 12
        assert rt.counters.get("spill_bytes_written") > 0
        assert rt.counters.get("spill_files") > 0

    def test_spilled_object_restored_for_get(self):
        rt = make_runtime(num_nodes=1, store_mib=64)
        make = rt.remote(lambda tag: (tag, _blob(16)))

        def driver():
            refs = [make.remote(i) for i in range(12)]
            # Let everything finish (and spill) before reading back.
            rt.wait(refs, num_returns=len(refs))
            values = rt.get(refs)
            return [tag for tag, _ in values]

        assert rt.run(driver) == list(range(12))
        assert rt.counters.get("spill_bytes_read") > 0

    def test_fusing_batches_small_objects(self):
        """With fusing, spilling N small objects makes few large files."""
        config = RuntimeConfig(fuse_min_bytes=8 * MB)
        rt = make_runtime(num_nodes=1, store_mib=16, config=config)
        make = rt.remote(lambda: _blob(1))

        def driver():
            refs = [make.remote() for _ in range(64)]
            rt.wait(refs, num_returns=len(refs))
            return refs

        rt.run(driver)
        files = rt.counters.get("spill_files")
        spilled = rt.counters.get("spill_bytes_written")
        assert spilled > 0
        assert files < spilled / (4 * MB)  # files are multi-object

    def test_unfused_spill_is_slower_on_seeky_disk(self):
        """Fig 7 mechanism: disabling fusing costs a seek per object."""

        def run(fusing):
            config = RuntimeConfig(enable_write_fusing=fusing)
            rt = make_runtime(
                num_nodes=1, store_mib=16, seek_ms=20.0, config=config
            )
            make = rt.remote(lambda: _blob(0.2))

            def driver():
                refs = [make.remote() for _ in range(200)]
                rt.wait(refs, num_returns=len(refs))
                return refs

            rt.run(driver)
            return rt.now

        assert run(fusing=False) > 1.5 * run(fusing=True)

    def test_single_giant_object_falls_back_to_disk(self):
        """An object bigger than the store must not deadlock (§4.2.2
        "falls back to allocating task output objects on the filesystem")."""
        rt = make_runtime(num_nodes=1, store_mib=32)
        make = rt.remote(lambda: _blob(64))

        def driver():
            ref = make.remote()
            ready, _ = rt.wait([ref], num_returns=1)
            return len(ready)

        assert rt.run(driver) == 1
        assert rt.counters.get("fallback_allocations") >= 1

    def test_spilling_disabled_still_makes_progress(self):
        config = RuntimeConfig(enable_spilling=False)
        rt = make_runtime(num_nodes=1, store_mib=32, config=config)
        make = rt.remote(lambda: _blob(16))

        def driver():
            refs = [make.remote() for _ in range(6)]  # 96 MB > 32 MiB
            ready, _ = rt.wait(refs, num_returns=len(refs))
            return len(ready)

        assert rt.run(driver) == 6
        assert rt.counters.get("spill_bytes_written") == 0
        assert rt.counters.get("fallback_allocations") >= 1


class TestEagerEviction:
    def test_release_evicts_everywhere(self):
        rt = make_runtime(num_nodes=1, store_mib=256)
        make = rt.remote(lambda: _blob(16))

        def driver():
            refs = [make.remote() for _ in range(4)]
            rt.wait(refs, num_returns=4)
            rt.free(refs)
            return True

        rt.run(driver)
        assert rt.counters.get("objects_evicted") >= 4
        store = rt.driver_manager.store
        assert store.used_bytes == 0

    def test_deleted_refs_avoid_spilling(self):
        """The ES-push* trick: dropping refs before memory pressure means
        the objects are evicted for free instead of spilled."""
        rt = make_runtime(num_nodes=1, store_mib=64)
        make = rt.remote(lambda: _blob(16))
        consume = rt.remote(lambda x: x.nbytes)

        def driver(free_early):
            total = 0
            for _ in range(12):
                ref = make.remote()
                out = consume.remote(ref)
                del ref
                total += rt.get(out)
            return total

        rt.run(driver, True)
        # Every intermediate was consumed then freed: nothing needed disk.
        assert rt.counters.get("spill_bytes_written") == 0

    def test_held_refs_do_spill_under_pressure(self):
        rt = make_runtime(num_nodes=1, store_mib=64)
        make = rt.remote(lambda: _blob(16))
        consume = rt.remote(lambda x: x.nbytes)

        def driver():
            kept = []
            for _ in range(12):
                ref = make.remote()
                kept.append(ref)
                rt.get(consume.remote(ref))
            return len(kept)

        rt.run(driver)
        assert rt.counters.get("spill_bytes_written") > 0

    def test_get_after_free_raises(self):
        rt = make_runtime(num_nodes=1)
        make = rt.remote(lambda: 42)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.free([ref])
            with pytest.raises(Exception):
                rt.get(ref)
            return True

        assert rt.run(driver)


class TestFetchingAndLocality:
    def test_cross_node_arg_fetch_charges_network(self):
        rt = make_runtime(num_nodes=2)
        make = rt.remote(lambda: _blob(50))
        a, b = rt.cluster.node_ids

        def driver():
            src = make.options(node=a).remote()
            out = rt.remote(lambda x: x.nbytes).options(node=b).remote(src)
            return rt.get(out)

        assert rt.run(driver) == 50 * MB
        assert rt.cluster.network_bytes_sent >= 50 * MB

    def test_locality_scheduling_avoids_network(self):
        def run(locality):
            config = RuntimeConfig(enable_locality_scheduling=locality)
            rt = make_runtime(num_nodes=4, config=config)
            make = rt.remote(lambda: _blob(50))
            consume = rt.remote(lambda x: x.nbytes)
            node = rt.cluster.node_ids[2]

            def driver():
                src = make.options(node=node).remote()
                rt.wait([src], num_returns=1)
                return rt.get(consume.remote(src))

            rt.run(driver)
            return rt.cluster.network_bytes_sent

        # With locality only the tiny final result crosses the network.
        assert run(locality=True) < 1000
        # Without locality the consumer lands on the least-loaded node
        # (node 0 by id order) and must pull the bytes.
        assert run(locality=False) >= 50 * MB

    def test_node_affinity_is_soft_when_node_dead(self):
        rt = make_runtime(num_nodes=3)
        victim = rt.cluster.node_ids[2]
        rt.cluster.node(victim).fail()
        work = rt.remote(lambda: "ran").options(node=victim)

        def driver():
            return rt.get(work.remote())

        assert rt.run(driver) == "ran"

    def test_concurrent_fetches_of_same_object_deduplicate(self):
        rt = make_runtime(num_nodes=2)
        make = rt.remote(lambda: _blob(80))
        touch = rt.remote(lambda x: 1)
        a, b = rt.cluster.node_ids

        def driver():
            src = make.options(node=a).remote()
            rt.wait([src], num_returns=1)
            outs = [touch.options(node=b).remote(src) for _ in range(6)]
            return sum(rt.get(outs))

        assert rt.run(driver) == 6
        # Only one copy of the 80 MB object should cross the network.
        assert rt.cluster.network_bytes_sent < 2 * 80 * MB


class TestPrefetching:
    def _pipeline_time(self, prefetch: bool) -> float:
        """Chain of consumers whose args must come from another node."""
        config = RuntimeConfig(enable_prefetching=prefetch)
        rt = make_runtime(num_nodes=2, cores=1, nic_mb_s=50.0, config=config)
        a, b = rt.cluster.node_ids
        make = rt.remote(lambda: _blob(25))
        crunch = rt.remote(lambda x: 1).options(compute=0.5, node=b)

        def driver():
            srcs = [make.options(node=a).remote() for _ in range(8)]
            rt.wait(srcs, num_returns=len(srcs))
            outs = [crunch.remote(s) for s in srcs]
            return sum(rt.get(outs))

        rt.run(driver)
        return rt.now

    def test_prefetch_overlaps_io_with_execution(self):
        """Fig 7 mechanism: pipelined fetching hides transfer latency.

        Node b has 1 core; without prefetch each task serialises
        fetch(0.5s)+compute(0.5s); with prefetch the fetches overlap
        earlier tasks' compute.
        """
        with_prefetch = self._pipeline_time(True)
        without = self._pipeline_time(False)
        assert with_prefetch < 0.8 * without


class TestIntrospection:
    def test_locations_of(self):
        rt = make_runtime(num_nodes=2)
        a = rt.cluster.node_ids[0]
        make = rt.remote(lambda: _blob(1)).options(node=a)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            return rt.locations_of(ref)

        assert rt.run(driver) == [a]

    def test_task_attempts_counts_executions(self):
        rt = make_runtime(num_nodes=1)
        make = rt.remote(lambda: 7)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            return rt.task_attempts(ref)

        assert rt.run(driver) == 1
