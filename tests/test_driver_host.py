"""The driver/simulation handoff: misuse, deadlocks, sequential runs."""

import pytest

from repro.futures.driver import DriverError, DriverHost
from repro.simcore import Environment

from tests.conftest import make_runtime


class TestDriverHost:
    def test_result_and_time_flow(self):
        env = Environment()
        host = DriverHost(env)

        def driver():
            host.block_on(env.timeout(5.0, value="woke"))
            return env.now

        assert host.run(driver) == 5.0

    def test_block_on_returns_event_value(self):
        env = Environment()
        host = DriverHost(env)

        def driver():
            return host.block_on(env.timeout(1.0, value=123))

        assert host.run(driver) == 123

    def test_failed_event_raises_in_driver(self):
        env = Environment()
        host = DriverHost(env)
        gate = env.event()
        env.call_later(1.0, lambda: gate.fail(ValueError("nope")))

        def driver():
            with pytest.raises(ValueError, match="nope"):
                host.block_on(gate)
            return "survived"

        assert host.run(driver) == "survived"

    def test_deadlock_reported(self):
        env = Environment()
        host = DriverHost(env)
        never = env.event()

        def driver():
            host.block_on(never)

        with pytest.raises(DriverError, match="deadlock"):
            host.run(driver)

    def test_block_on_outside_driver_rejected(self):
        env = Environment()
        host = DriverHost(env)
        with pytest.raises(DriverError):
            host.block_on(env.timeout(1.0))

    def test_sequential_runs_reuse_host(self):
        rt = make_runtime(num_nodes=1)
        inc = rt.remote(lambda x: x + 1)
        first = rt.run(lambda: rt.get(inc.remote(1)))
        second = rt.run(lambda: rt.get(inc.remote(first)))
        assert (first, second) == (2, 3)
        # simulated time accumulates across runs
        assert rt.now > 0

    def test_driver_exception_cleans_up_for_next_run(self):
        rt = make_runtime(num_nodes=1)

        def bad():
            raise KeyError("boom")

        with pytest.raises(KeyError):
            rt.run(bad)
        assert rt.run(lambda: "fine") == "fine"
