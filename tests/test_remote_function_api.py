"""RemoteFunction/TaskOptions API surface and validation."""

import pytest

from repro.futures import TaskOptions
from repro.futures.remote import RemoteFunction

from tests.conftest import make_runtime


class TestOptions:
    def test_options_returns_new_binding(self):
        rt = make_runtime(num_nodes=1)
        base = rt.remote(lambda: 1)
        tuned = base.options(compute=2.0, num_returns=1)
        assert tuned is not base
        assert tuned.task_options.compute == 2.0
        assert base.task_options.compute is None

    def test_num_returns_validated(self):
        with pytest.raises(ValueError):
            TaskOptions(num_returns=0)

    def test_unknown_option_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(TypeError):
            rt.remote(lambda: 1, warp_speed=9)

    def test_non_callable_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(TypeError):
            RemoteFunction(rt, 42, TaskOptions())  # type: ignore[arg-type]

    def test_name_option_shows_in_repr_and_records(self):
        rt = make_runtime(num_nodes=1)
        fn = rt.remote(lambda: 1, name="special")
        assert "special" in repr(fn)

        def driver():
            ref = fn.remote()
            rt.wait([ref], num_returns=1)
            return True

        rt.run(driver)
        assert any(
            r.spec.fn_name == "special" for r in rt.tasks.values()
        )

    def test_output_to_disk_option_lands_on_disk(self):
        import numpy as np
        from repro.common.units import MB

        rt = make_runtime(num_nodes=1, store_mib=512)
        writer = rt.remote(
            lambda: np.zeros(4 * MB, dtype=np.uint8), output_to_disk=True
        )

        def driver():
            ref = writer.remote()
            rt.wait([ref], num_returns=1)
            return ref

        ref = rt.run(driver)
        manager = rt.driver_manager
        assert manager.spill.is_spilled(ref.object_id)
        assert not manager.store.contains(ref.object_id)
        assert rt.counters.get("output_bytes_written") >= 4 * MB


class TestArgumentHandling:
    def test_plain_python_args_of_all_kinds(self):
        rt = make_runtime(num_nodes=1)
        echo = rt.remote(lambda *a: a)

        def driver():
            payload = (None, True, 3, 2.5, "text", b"bytes", [1, 2], {"k": 1})
            return rt.get(echo.remote(*payload))

        result = rt.run(driver)
        assert result[2] == 3 and result[7] == {"k": 1}

    def test_ref_in_set_rejected(self):
        rt = make_runtime(num_nodes=1)
        ident = rt.remote(lambda x: x)

        def driver():
            ref = ident.remote(1)
            with pytest.raises(TypeError):
                ident.remote({ref})
            with pytest.raises(TypeError):
                ident.remote({"key": ref})
            return True

        assert rt.run(driver)

    def test_submitting_freed_ref_raises(self):
        from repro.common.errors import ObjectLostError

        rt = make_runtime(num_nodes=1)
        ident = rt.remote(lambda x: x)

        def driver():
            ref = ident.remote(1)
            rt.wait([ref], num_returns=1)
            rt.free([ref])
            with pytest.raises(ObjectLostError):
                ident.remote(ref)
            return True

        assert rt.run(driver)
