"""Chaos under concurrent jobs: every fault kind fires beneath a
multi-tenant fleet and the control plane must stay correct.

Each run asserts the full contract: all jobs reach DONE, every output
matches the pure-function oracle, and the invariant checker -- including
the per-job accounting check -- reports nothing.
"""

import pytest

from repro.chaos import FaultKind, matrix_plan
from repro.futures import RetryPolicy
from repro.jobs import mixed_workload, run_jobs


def run_under_fault(kind, seed=0, num_jobs=4):
    tenants, specs = mixed_workload(seed, num_jobs=num_jobs)
    return run_jobs(
        specs,
        tenants,
        plan=matrix_plan(kind, seed=seed),
        retry_policy=RetryPolicy(max_attempts=8),
    )


@pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
def test_fleet_survives_fault(kind):
    report = run_under_fault(kind)
    assert report.all_done, [
        (j.job_id, j.state, repr(j.error)) for j in report.jobs
    ]
    assert report.incorrect == []
    assert report.violations == []


def test_node_crash_actually_fired_and_retried():
    report = run_under_fault(FaultKind.NODE_CRASH)
    assert report.injected  # the plan really fired
    assert report.stats.get("tasks_resubmitted", 0) > 0
    assert report.ok


def test_chaos_accounting_still_sums_to_global():
    report = run_under_fault(FaultKind.NODE_CRASH, seed=2)
    keys = set()
    for bucket in report.job_stats.values():
        keys.update(bucket)
    for key in keys:
        total = sum(b.get(key, 0.0) for b in report.job_stats.values())
        assert total == pytest.approx(report.stats.get(key, 0.0)), key
