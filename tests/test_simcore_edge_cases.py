"""Edge cases in the simulation engine not covered by the basics."""

import pytest

from repro.simcore import Environment
from repro.simcore.events import AnyOf, Event


def test_any_of_fails_only_when_all_children_fail():
    env = Environment()
    a, b = env.event(), env.event()
    caught = []

    def proc():
        try:
            yield env.any_of([a, b])
        except KeyError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.call_later(1.0, lambda: a.fail(KeyError("first")))
    env.call_later(2.0, lambda: b.fail(KeyError("second")))
    env.run()
    assert caught == ["'first'"]  # first error observed wins


def test_any_of_succeeds_despite_one_failure():
    env = Environment()
    a, b = env.event(), env.event()
    results = []

    def proc():
        value = yield env.any_of([a, b])
        results.append((env.now, value))

    env.process(proc())
    env.call_later(1.0, lambda: a.fail(KeyError("oops")))
    env.call_later(2.0, lambda: b.succeed("ok"))
    env.run()
    assert results == [(2.0, "ok")]


def test_event_value_before_trigger_rejected():
    env = Environment()
    with pytest.raises(RuntimeError):
        env.event().value


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_run_until_in_past_rejected():
    env = Environment()
    env.call_later(5.0, lambda: None)
    env.run(until=5.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_interrupt_before_first_step_kills_process():
    env = Environment()
    log = []

    def body():
        log.append("ran")
        yield env.timeout(1.0)

    proc = env.process(body())
    proc.interrupt("early")
    env.run()
    # The process never caught the interrupt: it dies without running
    # further, and nothing after the yield executes.
    assert proc.triggered
    assert not proc.ok


def test_callback_ordering_is_fifo_at_same_time():
    env = Environment()
    order = []
    for tag in ("a", "b", "c"):
        env.call_later(1.0, lambda t=tag: order.append(t))
    env.run()
    assert order == ["a", "b", "c"]


def test_add_callback_on_processed_event_fires_later_same_time():
    env = Environment()
    gate = env.event()
    gate.succeed("v")
    env.run(until=2.0)
    seen = []
    gate.add_callback(lambda e: seen.append((env.now, e.value)))
    assert seen == []  # deferred to the next step, not synchronous
    env.run()
    assert seen == [(2.0, "v")]


def test_peek_on_empty_queue_is_inf():
    assert Environment().peek() == float("inf")


def test_process_completion_event_exposes_ok():
    env = Environment()

    def fine():
        yield env.timeout(1.0)
        return "x"

    proc = env.process(fine())
    env.run()
    assert proc.ok and proc.value == "x"
