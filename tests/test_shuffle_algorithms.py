"""Every shuffle variant must produce a correct sort, real and virtual."""

import pytest

from repro.blocks import total_records
from repro.common.units import MB
from repro.futures import RuntimeConfig
from repro.shuffle import choose_shuffle, simple_shuffle, streaming_shuffle
from repro.shuffle.select import describe_choice
from repro.sort import SortJobConfig, run_sort, theoretical_sort_seconds

from tests.conftest import make_node_spec, make_runtime

ALL_VARIANTS = ["simple", "merge", "magnet", "push", "push*"]


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_sorts_real_data(variant):
    rt = make_runtime(num_nodes=3)
    config = SortJobConfig(
        variant=variant,
        num_partitions=8,
        partition_bytes=2 * MB,
        virtual=False,
        validate=True,
    )
    result = run_sort(rt, config)
    assert result.validated
    assert result.sort_seconds > 0


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_variant_sorts_virtual_data(variant):
    rt = make_runtime(num_nodes=4, store_mib=512)
    config = SortJobConfig(
        variant=variant,
        num_partitions=16,
        partition_bytes=100 * MB,  # 1.6 GB through 4x512 MiB stores: spills
        virtual=True,
        validate=True,
    )
    result = run_sort(rt, config)
    assert result.validated
    assert result.stats["spill_bytes_written"] > 0


def test_push_star_writes_less_than_push():
    """ES-push* must spill strictly fewer bytes (reduced write
    amplification, §5.1.4) at equal correctness."""

    def run(variant):
        rt = make_runtime(num_nodes=4, store_mib=256)
        config = SortJobConfig(
            variant=variant,
            num_partitions=16,
            partition_bytes=100 * MB,
            virtual=True,
        )
        result = run_sort(rt, config)
        assert result.validated
        return result.stats["disk_bytes_written"]

    assert run("push*") < run("push")


def test_sort_with_more_reducers_than_partitions():
    rt = make_runtime(num_nodes=2)
    config = SortJobConfig(
        variant="push*",
        num_partitions=4,
        num_reduces=10,
        partition_bytes=1 * MB,
        virtual=False,
    )
    assert run_sort(rt, config).validated


def test_sort_single_reducer_edge_case():
    rt = make_runtime(num_nodes=2)
    config = SortJobConfig(
        variant="simple",
        num_partitions=3,
        num_reduces=1,
        partition_bytes=1 * MB,
        virtual=False,
    )
    assert run_sort(rt, config).validated


def test_sort_more_partitions_than_cluster_slots():
    rt = make_runtime(num_nodes=2, cores=2)
    config = SortJobConfig(
        variant="push",
        num_partitions=20,
        partition_bytes=1 * MB,
        virtual=False,
    )
    assert run_sort(rt, config).validated


def test_bad_variant_rejected():
    with pytest.raises(ValueError):
        SortJobConfig(variant="turbo")


def test_theoretical_baseline_formula():
    spec = make_node_spec(disk_mb_s=100.0)
    from repro.cluster import ClusterSpec

    cluster = ClusterSpec.homogeneous(spec, 10)
    # 4 * 1 GB / (10 * 100 MB/s) = 4 s
    assert theoretical_sort_seconds(cluster, 10**9) == pytest.approx(4.0)


class TestStreamingShuffle:
    def test_stateful_rounds_accumulate(self):
        rt = make_runtime(num_nodes=2)
        seen_rounds = []

        def driver():
            def map_fn(values):
                # two reducers: evens and odds
                return [
                    [v for v in values if v % 2 == 0],
                    [v for v in values if v % 2 == 1],
                ]

            def reduce_fn(state, *lists):
                state = state or 0
                return state + sum(sum(lst) for lst in lists)

            rounds = [[[1, 2], [3, 4]], [[5, 6], [7, 8]]]
            states = streaming_shuffle(
                rt,
                rounds,
                map_fn,
                reduce_fn,
                num_reduces=2,
                on_round=lambda rnd, refs: seen_rounds.append(rnd),
            )
            return rt.get(states)

        even_sum, odd_sum = rt.run(driver)
        assert even_sum == 2 + 4 + 6 + 8
        assert odd_sum == 1 + 3 + 5 + 7
        assert seen_rounds == [0, 1]

    def test_rejects_empty_rounds(self):
        rt = make_runtime(num_nodes=1)

        def driver():
            with pytest.raises(ValueError):
                streaming_shuffle(rt, [], lambda x: [x], lambda s, x: x, 1)
            return True

        assert rt.run(driver)


class TestShuffleSelection:
    def test_small_in_memory_prefers_simple(self):
        rt = make_runtime(num_nodes=4, store_mib=2048)
        chosen = choose_shuffle(rt, total_data_bytes=100 * MB, num_partitions=50)
        assert chosen is simple_shuffle

    def test_large_data_prefers_push(self):
        rt = make_runtime(num_nodes=4, store_mib=2048)
        from repro.shuffle import push_based_shuffle

        chosen = choose_shuffle(
            rt, total_data_bytes=100_000 * MB, num_partitions=50
        )
        assert chosen is push_based_shuffle

    def test_many_partitions_prefer_push_even_in_memory(self):
        rt = make_runtime(num_nodes=4, store_mib=2048)
        from repro.shuffle import push_based_shuffle

        chosen = choose_shuffle(rt, total_data_bytes=10 * MB, num_partitions=500)
        assert chosen is push_based_shuffle

    def test_describe_choice_reports_inputs(self):
        rt = make_runtime(num_nodes=2)
        info = describe_choice(rt, 10 * MB, 10)
        assert info["algorithm"] == "simple_shuffle"
        assert info["num_partitions"] == 10


class TestSortWithFailure:
    def test_push_star_survives_injected_failure(self):
        from repro.cluster import FailurePlan

        config_rt = RuntimeConfig(failure_detection_s=3.0)
        rt = make_runtime(num_nodes=4, store_mib=512, config=config_rt)
        config = SortJobConfig(
            variant="push*",
            num_partitions=12,
            partition_bytes=40 * MB,
            virtual=True,
            failures=[FailurePlan(at_time=1.0, downtime=5.0, node_index=2)],
        )
        result = run_sort(rt, config)
        assert result.validated
        assert rt.counters.get("node_failures") == 1

    def test_failure_run_slower_than_clean_run(self):
        from repro.cluster import FailurePlan

        def run(failures):
            rt = make_runtime(
                num_nodes=4,
                store_mib=512,
                config=RuntimeConfig(failure_detection_s=5.0),
            )
            config = SortJobConfig(
                variant="push*",
                num_partitions=12,
                partition_bytes=40 * MB,
                virtual=True,
                failures=failures,
            )
            return run_sort(rt, config).sort_seconds

        clean = run(())
        failed = run((FailurePlan(at_time=1.0, downtime=5.0, node_index=2),))
        assert failed > clean
