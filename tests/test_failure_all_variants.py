"""Fault recovery across every shuffle variant.

The paper (§5.1.5) could only demonstrate recovery for the push variants:
"For ES-simple and -merge, a known bug in Ray currently prevents fault
recovery from completing."  Our data plane has no such bug, so the
reproduction goes further than the original here: every variant recovers
from a mid-job node failure with validated output.
"""

import pytest

from repro.cluster import FailurePlan
from repro.common.units import MB
from repro.futures import RuntimeConfig
from repro.sort import SortJobConfig, VARIANTS, run_sort

from tests.conftest import make_runtime

# Recovery must leave the data plane self-consistent, not just produce a
# validated sort: check the full invariant suite at quiesce.
pytestmark = pytest.mark.usefixtures("check_invariants")


@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_recovers_from_node_failure(variant):
    rt = make_runtime(
        num_nodes=4,
        store_mib=512,
        config=RuntimeConfig(failure_detection_s=3.0),
    )
    config = SortJobConfig(
        variant=variant,
        num_partitions=8,
        partition_bytes=20 * MB,
        virtual=True,
        failures=[FailurePlan(at_time=0.5, downtime=6.0, node_index=2)],
    )
    result = run_sort(rt, config)
    assert result.validated
    assert rt.counters.get("node_failures") == 1


@pytest.mark.parametrize("variant", ["simple", "push*"])
def test_variant_recovers_from_two_failures(variant):
    rt = make_runtime(
        num_nodes=5,
        store_mib=512,
        config=RuntimeConfig(failure_detection_s=2.0),
    )
    config = SortJobConfig(
        variant=variant,
        num_partitions=10,
        partition_bytes=60 * MB,  # long enough to straddle both failures
        virtual=True,
        failures=[
            FailurePlan(at_time=0.5, downtime=5.0, node_index=1),
            FailurePlan(at_time=2.0, downtime=5.0, node_index=3),
        ],
    )
    result = run_sort(rt, config)
    assert result.validated
    assert rt.counters.get("node_failures") == 2
