"""Actor support: stateful, serialised, node-pinned remote objects."""

import numpy as np
import pytest

from repro.common.units import MB
from repro.ml import SGDClassifier, SyntheticHiggs
from repro.ml.loaders import ExoshuffleLoader, stage_blocks

from tests.conftest import make_runtime


class Counter:
    def __init__(self, start=0):
        self.value = start

    def add(self, amount):
        self.value += amount
        return self.value

    def get(self):
        return self.value


class TestActors:
    def test_state_persists_across_calls(self):
        rt = make_runtime(num_nodes=2)

        def driver():
            counter = rt.actor(Counter).remote(10)
            counter.add.remote(5)
            counter.add.remote(7)
            return rt.get(counter.get.remote())

        assert rt.run(driver) == 22

    def test_calls_serialise_in_submission_order(self):
        rt = make_runtime(num_nodes=2)

        class Recorder:
            def __init__(self):
                self.log = []

            def mark(self, tag):
                self.log.append(tag)
                return list(self.log)

        def driver():
            rec = rt.actor(Recorder, compute=0.5).remote()
            refs = [rec.mark.remote(tag) for tag in "abcd"]
            return rt.get(refs[-1])

        assert rt.run(driver) == ["a", "b", "c", "d"]

    def test_actor_pinned_to_node(self):
        rt = make_runtime(num_nodes=3)
        home = rt.cluster.node_ids[2]

        def driver():
            counter = rt.actor(Counter, node=home).remote(0)
            ref = counter.add.remote(1)
            rt.wait([ref], num_returns=1)
            return rt.locations_of(ref)

        assert rt.run(driver) == [home]

    def test_method_args_resolve_object_refs(self):
        rt = make_runtime(num_nodes=2)
        make = rt.remote(lambda: np.zeros(2 * MB, dtype=np.uint8))

        class Sizer:
            def __init__(self):
                self.total = 0

            def feed(self, arr):
                self.total += arr.nbytes
                return self.total

        def driver():
            sizer = rt.actor(Sizer).remote()
            blob = make.remote()
            return rt.get(sizer.feed.remote(blob))

        assert rt.run(driver) == 2 * MB

    def test_unknown_method_rejected(self):
        rt = make_runtime(num_nodes=1)

        def driver():
            counter = rt.actor(Counter).remote(0)
            with pytest.raises(AttributeError):
                counter.fly.remote()
            return True

        assert rt.run(driver)

    def test_method_error_propagates(self):
        from repro.common.errors import TaskExecutionError

        class Fragile:
            def boom(self):
                raise RuntimeError("snapped")

        rt = make_runtime(num_nodes=1)

        def driver():
            fragile = rt.actor(Fragile).remote()
            with pytest.raises(TaskExecutionError):
                rt.get(fragile.boom.remote())
            return True

        assert rt.run(driver)


class TestListingTwoTrainer:
    def test_model_training_listing_shape(self):
        """Listing 2's model_training, with an actual actor trainer."""
        rt = make_runtime(num_nodes=2, store_mib=4096)
        data = SyntheticHiggs(num_samples=4000, seed=1, io_scale=20.0)
        blocks = data.training_blocks(6)
        val_x, val_y = data.validation_set()

        class Trainer:
            def __init__(self):
                self.model = SGDClassifier(num_features=data.num_features)

            def train(self, block):
                self.model.train_block(block.features, block.labels)
                return None

            def accuracy(self):
                return self.model.accuracy(val_x, val_y)

        def driver():
            refs = rt.run  # noqa: F841 - keep flake quiet about closure
            parts = stage_blocks(rt, blocks)
            loader = ExoshuffleLoader(rt, parts, seed=0)
            trainer = rt.actor(Trainer).remote()
            shuffle_out = loader.submit_epoch(0)
            for epoch in range(3):
                next_out = (
                    loader.submit_epoch(epoch + 1) if epoch < 2 else None
                )
                for block_ref in shuffle_out:
                    trainer.train.remote(block_ref)
                shuffle_out = next_out
            return rt.get(trainer.accuracy.remote())

        accuracy = rt.run(driver)
        assert accuracy > 0.75
