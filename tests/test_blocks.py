"""Unit and property-based tests for block payloads and operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks import (
    RealBlock,
    VirtualBlock,
    concat_blocks,
    merge_sorted_blocks,
    partition_block,
    sort_block,
    total_records,
)
from repro.blocks.real import KEY_SPACE


class TestRealBlock:
    def test_generate_is_deterministic(self):
        a = RealBlock.generate(100, seed=7)
        b = RealBlock.generate(100, seed=7)
        assert (a.keys == b.keys).all()
        assert a.checksum() == b.checksum()

    def test_size_accounts_for_full_records(self):
        block = RealBlock.generate(50, seed=1, record_bytes=100)
        assert block.size_bytes == 5000
        assert block.num_records == 50

    def test_key_range(self):
        block = RealBlock(np.array([5, 2, 9], dtype=np.uint64))
        assert block.key_range == (2, 9)
        assert RealBlock(np.array([], dtype=np.uint64)).key_range is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RealBlock(np.zeros((2, 2)), record_bytes=100)
        with pytest.raises(ValueError):
            RealBlock(np.array([1]), record_bytes=4)


class TestVirtualBlock:
    def test_basic_properties(self):
        block = VirtualBlock(1000, record_bytes=100)
        assert block.size_bytes == 100_000
        assert block.is_virtual
        assert block.key_range == (0, KEY_SPACE)

    def test_empty_block_has_no_range(self):
        assert VirtualBlock(0).key_range is None

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualBlock(-1)
        with pytest.raises(ValueError):
            VirtualBlock(1, key_range=(10, 5))


class TestPartition:
    def test_real_partition_respects_bounds(self):
        block = RealBlock.generate(1000, seed=3, key_space=1000)
        pieces = partition_block(block, [250, 500, 750])
        assert len(pieces) == 4
        assert total_records(pieces) == 1000
        for i, piece in enumerate(pieces):
            if piece.key_range is None:
                continue
            lo, hi = piece.key_range
            assert lo >= [0, 250, 500, 750][i]
            assert hi < [250, 500, 750, 1000][i]

    def test_real_partition_conserves_checksum(self):
        block = RealBlock.generate(500, seed=4)
        pieces = partition_block(block, [KEY_SPACE // 2])
        total = sum(p.checksum() for p in pieces) % 2**64
        assert total == block.checksum()

    def test_virtual_partition_conserves_records_exactly(self):
        block = VirtualBlock(10_000, key_range=(0, 999))
        pieces = partition_block(block, [100, 400, 777])
        assert total_records(pieces) == 10_000
        assert all(p.is_virtual for p in pieces)

    def test_virtual_partition_proportional_to_range(self):
        block = VirtualBlock(1000, key_range=(0, 999))
        low, high = partition_block(block, [100])
        assert low.num_records == pytest.approx(100, abs=2)
        assert high.num_records == pytest.approx(900, abs=2)

    def test_descending_bounds_rejected(self):
        with pytest.raises(ValueError):
            partition_block(VirtualBlock(10), [5, 3])

    def test_partition_empty_virtual(self):
        pieces = partition_block(VirtualBlock(0), [10, 20])
        assert len(pieces) == 3
        assert total_records(pieces) == 0


class TestMergeSortConcat:
    def test_sort_real(self):
        block = RealBlock(np.array([3, 1, 2], dtype=np.uint64))
        out = sort_block(block)
        assert list(out.keys) == [1, 2, 3]
        assert out.sorted

    def test_merge_sorted_real(self):
        a = sort_block(RealBlock(np.array([1, 5, 9], dtype=np.uint64)))
        b = sort_block(RealBlock(np.array([2, 3, 10], dtype=np.uint64)))
        merged = merge_sorted_blocks([a, b])
        assert list(merged.keys) == [1, 2, 3, 5, 9, 10]

    def test_merge_virtual_unions_ranges(self):
        a = VirtualBlock(10, key_range=(0, 49))
        b = VirtualBlock(20, key_range=(100, 149))
        merged = merge_sorted_blocks([a, b])
        assert merged.num_records == 30
        assert merged.key_range == (0, 149)
        assert merged.sorted

    def test_concat_keeps_unsorted_flag(self):
        a = RealBlock(np.array([5], dtype=np.uint64))
        b = RealBlock(np.array([1], dtype=np.uint64))
        assert not concat_blocks([a, b]).sorted

    def test_mixing_kinds_rejected(self):
        with pytest.raises(TypeError):
            merge_sorted_blocks(
                [VirtualBlock(1), RealBlock(np.array([1], dtype=np.uint64))]
            )

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_sorted_blocks([])


# -- property-based invariants -------------------------------------------

bounds_strategy = st.lists(
    st.integers(min_value=1, max_value=KEY_SPACE - 1),
    min_size=0,
    max_size=20,
    unique=True,
).map(sorted)


@settings(max_examples=60, deadline=None)
@given(
    num_records=st.integers(min_value=0, max_value=3000),
    bounds=bounds_strategy,
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_real_partition_conserves_everything(num_records, bounds, seed):
    block = RealBlock.generate(num_records, seed=seed)
    pieces = partition_block(block, bounds)
    assert len(pieces) == len(bounds) + 1
    assert total_records(pieces) == num_records
    assert sum(p.checksum() for p in pieces) % 2**64 == block.checksum()


@settings(max_examples=60, deadline=None)
@given(
    num_records=st.integers(min_value=0, max_value=10**9),
    bounds=bounds_strategy,
)
def test_property_virtual_partition_conserves_records(num_records, bounds):
    block = VirtualBlock(num_records)
    pieces = partition_block(block, bounds)
    assert total_records(pieces) == num_records
    # No piece may be negative and ranges must nest inside the parent's.
    for piece in pieces:
        assert piece.num_records >= 0
        if piece.key_range is not None:
            lo, hi = piece.key_range
            assert 0 <= lo <= hi <= KEY_SPACE


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_merge_equals_global_sort(sizes, seed):
    rng = np.random.default_rng(seed)
    blocks = [
        sort_block(
            RealBlock(rng.integers(0, 10**6, size=n, dtype=np.uint64))
        )
        for n in sizes
    ]
    merged = merge_sorted_blocks(blocks)
    reference = np.sort(np.concatenate([b.keys for b in blocks]))
    assert (merged.keys == reference).all()


@settings(max_examples=40, deadline=None)
@given(
    num_records=st.integers(min_value=1, max_value=2000),
    num_parts=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_partition_then_merge_is_sort(num_records, num_parts, seed):
    """The core sort identity: partition + per-range sort + concat ==
    global sort."""
    from repro.sort.partitioner import uniform_bounds

    block = RealBlock.generate(num_records, seed=seed)
    bounds = uniform_bounds(num_parts)
    pieces = [sort_block(p) for p in partition_block(block, bounds)]
    glued = np.concatenate([p.keys for p in pieces])
    assert (glued == np.sort(block.keys)).all()
