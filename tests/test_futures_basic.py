"""End-to-end behaviour of the distributed-futures runtime: submission,
get/wait/put, multiple returns, generators, and error propagation."""

import pytest

from repro.common.errors import TaskExecutionError
from repro.futures import Runtime, RuntimeConfig

from tests.conftest import make_runtime


def test_single_task_round_trip(rt):
    double = rt.remote(lambda x: 2 * x)

    def driver():
        return rt.get(double.remote(21))

    assert rt.run(driver) == 42
    assert rt.now > 0  # task overhead and compute took simulated time


def test_task_chaining_passes_values_by_ref(rt):
    inc = rt.remote(lambda x: x + 1)

    def driver():
        ref = inc.remote(0)
        for _ in range(4):
            ref = inc.remote(ref)
        return rt.get(ref)

    assert rt.run(driver) == 5


def test_get_list_preserves_order(rt):
    ident = rt.remote(lambda x: x)

    def driver():
        refs = [ident.remote(i) for i in range(10)]
        return rt.get(refs)

    assert rt.run(driver) == list(range(10))


def test_parallel_tasks_share_cores():
    """Four 1-second tasks on 2 cores take ~2 seconds, not 4."""
    rt = make_runtime(num_nodes=1, cores=2)
    work = rt.remote(lambda: None).options(compute=1.0)

    def driver():
        return rt.get([work.remote() for _ in range(4)])

    rt.run(driver)
    assert 2.0 <= rt.now < 2.5


def test_multiple_returns(rt):
    split = rt.remote(lambda: (1, 2, 3)).options(num_returns=3)

    def driver():
        refs = split.remote()
        assert isinstance(refs, list) and len(refs) == 3
        return rt.get(refs)

    assert rt.run(driver) == [1, 2, 3]


def test_wrong_number_of_returns_fails_task(rt):
    bad = rt.remote(lambda: (1, 2)).options(num_returns=3)

    def driver():
        return rt.get(bad.remote())

    with pytest.raises(TaskExecutionError):
        rt.run(driver)


def test_generator_task_yields_each_return(rt):
    def gen(n):
        for i in range(n):
            yield i * i

    squares = rt.remote(gen).options(num_returns=4)

    def driver():
        return rt.get(squares.remote(4))

    assert rt.run(driver) == [0, 1, 4, 9]


def test_generator_yielding_too_few_fails(rt):
    def gen():
        yield 1

    bad = rt.remote(gen).options(num_returns=2)

    def driver():
        return rt.get(bad.remote())

    with pytest.raises(TaskExecutionError):
        rt.run(driver)


def test_task_exception_propagates_to_get(rt):
    def boom():
        raise ValueError("kaput")

    bad = rt.remote(boom)

    def driver():
        return rt.get(bad.remote())

    with pytest.raises(TaskExecutionError) as excinfo:
        rt.run(driver)
    assert isinstance(excinfo.value.cause, ValueError)


def test_error_propagates_through_dependents(rt):
    def boom():
        raise KeyError("lost")

    bad = rt.remote(boom)
    consume = rt.remote(lambda x: x)

    def driver():
        return rt.get(consume.remote(bad.remote()))

    with pytest.raises(TaskExecutionError):
        rt.run(driver)


def test_put_and_get(rt):
    def driver():
        ref = rt.put({"a": 1})
        return rt.get(ref)

    assert rt.run(driver) == {"a": 1}


def test_wait_returns_ready_and_pending(rt):
    fast = rt.remote(lambda: "fast").options(compute=0.1)
    slow = rt.remote(lambda: "slow").options(compute=50.0)

    def driver():
        refs = [slow.remote(), fast.remote()]
        ready, not_ready = rt.wait(refs, num_returns=1)
        assert len(ready) == 1 and len(not_ready) == 1
        assert rt.get(ready[0]) == "fast"
        ready_all, rest = rt.wait(refs, num_returns=2)
        assert len(ready_all) == 2 and not rest
        return True

    assert rt.run(driver)


def test_wait_timeout_expires(rt):
    slow = rt.remote(lambda: 1).options(compute=100.0)

    def driver():
        before = rt.timestamp()
        ready, not_ready = rt.wait([slow.remote()], num_returns=1, timeout=5.0)
        assert rt.timestamp() - before == pytest.approx(5.0)
        return (len(ready), len(not_ready))

    assert rt.run(driver) == (0, 1)


def test_wait_num_returns_validation(rt):
    ref_holder = {}

    def driver():
        ref_holder["r"] = rt.put(1)
        with pytest.raises(ValueError):
            rt.wait([ref_holder["r"]], num_returns=2)
        return True

    assert rt.run(driver)


def test_sleep_advances_simulated_time(rt):
    def driver():
        t0 = rt.timestamp()
        rt.sleep(12.5)
        return rt.timestamp() - t0

    assert rt.run(driver) == pytest.approx(12.5)


def test_remote_decorator_form(rt):
    @rt.remote(num_returns=2)
    def pair(x):
        return x, x + 1

    def driver():
        return rt.get(pair.remote(5))

    assert rt.run(driver) == [5, 6]


def test_remote_function_not_directly_callable(rt):
    fn = rt.remote(lambda: 1)
    with pytest.raises(TypeError):
        fn()


def test_nested_refs_rejected(rt):
    ident = rt.remote(lambda x: x)

    def driver():
        ref = ident.remote(1)
        with pytest.raises(TypeError):
            ident.remote([ref])
        return True

    assert rt.run(driver)


def test_blocking_api_outside_driver_rejected(rt):
    ident = rt.remote(lambda x: x)
    ref = None

    def driver():
        return ident.remote(1)

    ref = rt.run(driver)
    from repro.futures.driver import DriverError

    with pytest.raises(DriverError):
        rt.get(ref)


def test_driver_exception_propagates(rt):
    def driver():
        raise RuntimeError("driver bug")

    with pytest.raises(RuntimeError, match="driver bug"):
        rt.run(driver)


def test_compute_cost_callable_receives_context(rt):
    seen = {}

    def cost(ctx):
        seen["num_returns"] = ctx.num_returns
        return 3.0

    work = rt.remote(lambda: (1, 2)).options(num_returns=2, compute=cost)

    def driver():
        return rt.get(work.remote())

    rt.run(driver)
    assert seen["num_returns"] == 2
    assert rt.now >= 3.0


def test_default_compute_cost_scales_with_bytes():
    rt = make_runtime(num_nodes=1)
    import numpy as np

    big = rt.remote(lambda: np.zeros(50_000_000, dtype=np.uint8))
    small = rt.remote(lambda: np.zeros(1000, dtype=np.uint8))

    def driver():
        t0 = rt.timestamp()
        rt.get(big.remote())
        t_big = rt.timestamp() - t0
        t0 = rt.timestamp()
        rt.get(small.remote())
        t_small = rt.timestamp() - t0
        return t_big, t_small

    t_big, t_small = rt.run(driver)
    assert t_big > 10 * t_small


def test_task_counters(rt):
    ident = rt.remote(lambda x: x)

    def driver():
        return rt.get([ident.remote(i) for i in range(5)])

    rt.run(driver)
    assert rt.counters.get("tasks_submitted") == 5
    assert rt.counters.get("tasks_finished") == 5
    assert rt.counters.get("tasks_failed") == 0


def test_stats_snapshot(rt):
    ident = rt.remote(lambda x: x)

    def driver():
        return rt.get(ident.remote(1))

    rt.run(driver)
    stats = rt.stats()
    assert stats["time"] == rt.now
    assert "tasks_finished" in stats
