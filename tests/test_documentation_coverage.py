"""Documentation is a deliverable: every public module, class, and
function in the library must carry a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.simcore",
    "repro.cluster",
    "repro.futures",
    "repro.chaos",
    "repro.jobs",
    "repro.blocks",
    "repro.plan",
    "repro.shuffle",
    "repro.sort",
    "repro.baselines.spark",
    "repro.baselines.dask",
    "repro.baselines.petastorm",
    "repro.ml",
    "repro.aggregation",
    "repro.dataframe",
    "repro.graphs",
    "repro.workloads",
    "repro.metrics",
    "repro.obs",
    "repro.streaming",
    "repro.tools",
]


def _iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if not hasattr(package, "__path__"):
            continue
        for info in pkgutil.iter_modules(package.__path__):
            name = f"{package_name}.{info.name}"
            if name in seen or info.name.startswith("_"):
                continue
            seen.add(name)
            yield importlib.import_module(name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(item):
            for attr_name, attr in vars(item).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                if not (attr.__doc__ and attr.__doc__.strip()):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
    )


#: Each subsystem guide that must exist under ``docs/``, with phrases it
#: must cover and the other guides it must cross-link.
REQUIRED_DOCS = {
    "data_plane.md": (
        ["spill_backend", "AutoscalePolicy", "stage_boundary"],
        ["elasticity.md", "planner.md"],
    ),
    "chaos.md": (
        ["node_join", "node_drain", "node_remove"],
        ["elasticity.md"],
    ),
    "elasticity.md": (
        ["ClusterMembership", "spill_backend", "threshold", "remove_node"],
        ["chaos.md", "data_plane.md", "observability.md"],
    ),
    "streaming.md": (
        [
            "StreamSpec", "backpressure", "open-loop", "p999",
            "watermark", "stage_boundary",
        ],
        ["jobs.md", "observability.md", "planner.md"],
    ),
    "jobs.md": (
        ["StreamSpec", "lowering rule"],
        ["streaming.md", "planner.md"],
    ),
    "planner.md": (
        [
            "ShuffleExpr",
            "ShufflePlan",
            "lower",
            "simplify",
            "fits_in_memory",
            "plan.replan",
            "policy.decision",
            "min_gain",
            'replan="on"',
            'variant="auto"',
            "bit-for-bit",
            "check_plan_isolation",
        ],
        ["data_plane.md", "jobs.md", "streaming.md", "observability.md"],
    ),
    "observability.md": (
        ["p999", "SelfProfiler"],
        ["streaming.md", "live.md", "profiling.md"],
    ),
    "profiling.md": (
        [
            "SelfProfiler",
            "untracked",
            "coverage_error",
            "events per wall second",
            "bit-for-bit",
            "flamegraph",
            "--profile",
            "never gate",
        ],
        ["perf.md", "observability.md", "live.md"],
    ),
    "perf.md": (
        ["critical_path", "--live-html", "--profile", "trajectory"],
        ["observability.md", "live.md", "profiling.md"],
    ),
    "live.md": (
        [
            "TimeSeriesSampler",
            "series_digest",
            "bit-for-bit",
            "attach_sampler",
            "--follow",
            "self-contained",
        ],
        ["observability.md", "perf.md", "streaming.md", "chaos.md"],
    ),
}


@pytest.mark.parametrize("name", sorted(REQUIRED_DOCS), ids=str)
def test_subsystem_guide_covers_and_cross_links(name):
    from pathlib import Path

    docs_dir = Path(__file__).resolve().parent.parent / "docs"
    path = docs_dir / name
    assert path.is_file(), f"docs/{name} is missing"
    text = path.read_text()
    phrases, links = REQUIRED_DOCS[name]
    missing = [p for p in phrases if p not in text]
    assert not missing, f"docs/{name} does not mention {missing}"
    unlinked = [f"]({l})" for l in links if f"]({l})" not in text]
    assert not unlinked, f"docs/{name} is missing cross-links {unlinked}"


def test_readme_links_streaming_guide():
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    assert "docs/streaming.md" in readme.read_text()


def test_readme_links_live_guide():
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    assert "docs/live.md" in readme.read_text()


def test_readme_links_profiling_guide():
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    assert "docs/profiling.md" in readme.read_text()


def test_readme_links_planner_guide():
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    assert "docs/planner.md" in readme.read_text()
