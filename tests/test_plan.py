"""The expression-level plan IR and the adaptive planner.

Three layers of pinning:

- *equivalence*: lowering an abstract :class:`ShuffleExpr` with the
  ``"cost"`` rule reproduces the legacy ``jobs.planner.ShufflePlanner``
  choice (checked against an inlined verbatim copy of the pre-refactor
  formulas, not just the wrapper), and the ``"empirical"`` rule
  reproduces ``shuffle.select``'s two-way crossover -- property-tested
  over random shapes and profiles;
- *zero cost when off*: with ``replan="off"`` (the default) the plan
  layer emits nothing and a multi-tenant jobs run is bit-for-bit
  identical to the pre-plan-layer build (golden full-event digest);
- *adaptivity*: with re-planning on, observed spill/disk spans degrade
  the effective profile, stage boundaries can switch the remaining
  plan (causally chained ``plan.lower`` -> ``plan.replan``), and
  streaming round boundaries can shrink the in-flight bound.
"""

import hashlib

import pytest
from conftest import make_runtime
from hypothesis import given, settings, strategies as st

from repro.chaos.harness import SHUFFLE_VARIANTS, default_node_spec
from repro.dataframe import DistributedFrame
from repro.futures import Runtime, RuntimeConfig
from repro.jobs import JobManager, JobSpec, ShufflePlanner, TenantSpec, mixed_workload
from repro.jobs.spec import StreamSpec
from repro.plan import (
    PLAN_VARIANTS,
    AdaptivePlanner,
    ClusterProfile,
    JobShape,
    MEMORY_HEADROOM,
    PARTITION_CROSSOVER,
    ShuffleExpr,
    ShufflePlan,
    empirical_variant,
    fits_in_memory,
    planner_for_runtime,
    rank_variants,
)
from repro.shuffle.select import _decide
import numpy as np

# ---------------------------------------------------------------------------
# The pre-refactor cost model, inlined verbatim as an independent oracle
# (from jobs/planner.py before it became a wrapper).  If the plan layer
# drifts from these formulas, the equivalence property below fails even
# though the wrapper now shares code with the layer it wraps.
# ---------------------------------------------------------------------------

_SCHEDULE_S = 5e-4
_PER_BLOCK_S = 1e-4
_PUSH_SETUP_S = 0.06
_DYNAMIC_DISCOUNT = 0.95
_STREAMING_DISCOUNT = 0.9


def _oracle_estimate(profile, shape, variant, merge_factor=2):
    p = profile
    in_memory = shape.total_bytes <= MEMORY_HEADROOM * p.store_bytes
    crossing = shape.total_bytes * (p.num_nodes - 1) / max(1, p.num_nodes)
    net = crossing / p.nic_bandwidth

    def disk_seconds(blocks, passes):
        if in_memory:
            return 0.0
        streamed = passes * 2 * shape.total_bytes / p.disk_bandwidth
        seeks = blocks * p.disk_seek_s / p.num_nodes
        return streamed + seeks

    M, R, W = shape.num_maps, shape.num_reduces, p.num_nodes
    F = merge_factor
    feasible, overlap, extra = True, False, 0.0
    if variant == "simple":
        blocks, tasks = M * R, M + R
        disk = disk_seconds(blocks, passes=1)
    elif variant in ("riffle", "riffle_dynamic"):
        merges = max(1, M // F)
        blocks, tasks = merges * R, M + merges + R
        disk = disk_seconds(blocks, passes=2)
        if variant == "riffle_dynamic":
            disk *= _DYNAMIC_DISCOUNT
    elif variant == "magnet":
        blocks, tasks = W * R, M + W * R // max(1, F) + R
        disk = disk_seconds(blocks, passes=2)
    elif variant == "push":
        blocks, tasks = W * R, M + W * R + R
        disk = disk_seconds(blocks, passes=1)
        overlap, extra = True, _PUSH_SETUP_S
    elif variant == "streaming":
        blocks, tasks = M * R, M + R
        disk = disk_seconds(blocks, passes=1)
        overlap = True
        feasible = shape.streaming
    meta = blocks * _PER_BLOCK_S + tasks * _SCHEDULE_S
    moved = max(net, disk) if overlap else net + disk
    seconds = meta + moved + extra
    if variant == "streaming":
        seconds *= _STREAMING_DISCOUNT
    return seconds, feasible


def _oracle_choose(profile, shape):
    ranked = sorted(
        (
            (_oracle_estimate(profile, shape, v), v)
            for v in SHUFFLE_VARIANTS
        ),
        key=lambda pair: (not pair[0][1], pair[0][0], pair[1]),
    )
    (seconds, feasible), variant = ranked[0]
    if not feasible:
        raise ValueError("no feasible shuffle variant for this job shape")
    return variant


profiles = st.builds(
    ClusterProfile,
    num_nodes=st.integers(1, 16),
    total_cores=st.integers(1, 256),
    store_bytes=st.integers(1, 10**12),
    disk_bandwidth=st.floats(1e6, 1e10),
    nic_bandwidth=st.floats(1e6, 1e10),
    disk_seek_s=st.floats(1e-4, 5e-2),
)

shapes = st.builds(
    JobShape,
    total_bytes=st.integers(0, 10**12),
    num_maps=st.integers(1, 500),
    num_reduces=st.integers(1, 500),
    streaming=st.booleans(),
)


class TestVariantRegistry:
    def test_plan_variants_mirror_the_chaos_registry(self):
        """The plan layer declares its own tuple (it must not import the
        chaos harness); this pins the two in lockstep."""
        assert PLAN_VARIANTS == SHUFFLE_VARIANTS


class TestSharedPredicate:
    def test_fits_in_memory_accepts_typed_and_raw_inputs(self):
        profile = ClusterProfile(
            num_nodes=2, total_cores=8, store_bytes=1000,
            disk_bandwidth=1e8, nic_bandwidth=1e8,
        )
        shape = JobShape(total_bytes=400, num_maps=4, num_reduces=4)
        assert fits_in_memory(profile, shape)
        assert fits_in_memory(1000, 400)
        assert not fits_in_memory(1000, 401)

    def test_crossover_constants_are_reexported_by_the_wrapper(self):
        from repro.shuffle import select

        assert select.MEMORY_HEADROOM is MEMORY_HEADROOM
        assert select.PARTITION_CROSSOVER is PARTITION_CROSSOVER


class TestEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(profile=profiles, shape=shapes)
    def test_cost_rule_matches_legacy_planner_and_oracle(self, profile, shape):
        expr = ShuffleExpr(shape=shape)
        try:
            expected = _oracle_choose(profile, shape)
        except ValueError:
            with pytest.raises(ValueError):
                expr.lower(profile, rule="cost")
            return
        plan = expr.lower(profile, rule="cost")
        assert plan.variant == expected
        assert plan.variant == ShufflePlanner(profile).choose(shape)

    @settings(max_examples=200, deadline=None)
    @given(profile=profiles, shape=shapes)
    def test_empirical_rule_matches_the_select_crossover(self, profile, shape):
        plan = ShuffleExpr(shape=shape).lower(profile, rule="empirical")
        partitions = max(shape.num_maps, shape.num_reduces)
        legacy = _decide(shape.total_bytes, partitions, profile.store_bytes)
        assert plan.variant == {
            "simple_shuffle": "simple", "push_based_shuffle": "push"
        }[legacy.__name__]
        assert plan.variant == empirical_variant(
            profile.store_bytes, shape.total_bytes, partitions
        )

    @settings(max_examples=100, deadline=None)
    @given(profile=profiles, shape=shapes)
    def test_estimates_match_the_oracle_numerically(self, profile, shape):
        for est in rank_variants(profile, shape):
            seconds, feasible = _oracle_estimate(profile, shape, est.variant)
            assert est.est_seconds == pytest.approx(seconds)
            assert est.feasible == feasible


class TestExpressionIR:
    PROFILE = ClusterProfile(
        num_nodes=4, total_cores=16, store_bytes=10**9,
        disk_bandwidth=8e8, nic_bandwidth=5e8,
    )

    def test_explicit_backend_skips_the_rules(self):
        shape = JobShape(total_bytes=10**12, num_maps=300, num_reduces=300)
        plan = ShuffleExpr(shape=shape, backend="simple").lower(self.PROFILE)
        assert plan.variant == "simple" and plan.decided_by == "explicit"
        assert plan.ranking == ()
        # ...but the estimate is still computed, so it can explain itself.
        assert plan.estimate.variant == "simple"
        assert "simple" in plan.explain()

    def test_variant_restriction_limits_the_ranking(self):
        shape = JobShape(total_bytes=10**12, num_maps=64, num_reduces=64)
        plan = ShuffleExpr(
            shape=shape, variants=("simple", "push")
        ).lower(self.PROFILE)
        assert plan.variant in ("simple", "push")
        assert {est.variant for est in plan.ranking} == {"simple", "push"}

    def test_unknown_backend_and_empty_restriction_rejected(self):
        shape = JobShape(total_bytes=1, num_maps=1, num_reduces=1)
        with pytest.raises(ValueError):
            ShuffleExpr(shape=shape, backend="bogus")
        with pytest.raises(ValueError):
            ShuffleExpr(shape=shape, variants=())
        with pytest.raises(ValueError):
            ShuffleExpr(shape=shape).lower(self.PROFILE, rule="bogus")

    def test_infeasible_when_only_streaming_offered_to_batch_shape(self):
        shape = JobShape(
            total_bytes=1, num_maps=1, num_reduces=1, streaming=False
        )
        with pytest.raises(ValueError):
            ShuffleExpr(shape=shape, variants=("streaming",)).lower(self.PROFILE)

    def test_repartition_collapse_rewrite(self):
        inner = ShuffleExpr(
            shape=JobShape(total_bytes=500, num_maps=8, num_reduces=32),
            label="repartition",
        )
        outer = ShuffleExpr(
            shape=JobShape(total_bytes=600, num_maps=32, num_reduces=4),
            input=inner,
            label="groupby",
        )
        simplified = outer.simplify()
        # The inner layout change is dead work: the merged exchange reads
        # the original 8 partitions straight into the outer's 4.
        assert simplified.input is None
        assert simplified.shape == JobShape(
            total_bytes=500, num_maps=8, num_reduces=4
        )
        # Non-repartition inputs are left alone.
        kept = ShuffleExpr(
            shape=outer.shape,
            input=ShuffleExpr(shape=inner.shape, label="sort"),
        ).simplify()
        assert kept.input is not None

    def test_plan_to_dict_is_json_shaped(self):
        shape = JobShape(total_bytes=10**8, num_maps=8, num_reduces=4)
        plan = ShuffleExpr(shape=shape).lower(self.PROFILE)
        data = plan.to_dict()
        assert data["variant"] == plan.variant
        assert data["shape"]["num_maps"] == 8
        assert len(data["ranking"]) == len(PLAN_VARIANTS)


class TestAdaptivePlanner:
    PROFILE = TestExpressionIR.PROFILE

    def test_off_planner_is_silent_and_static(self, rt):
        planner = AdaptivePlanner(self.PROFILE)
        before = len(rt.bus.events)
        plan = planner.plan(
            ShuffleExpr(
                shape=JobShape(total_bytes=10**8, num_maps=8, num_reduces=4)
            )
        )
        assert isinstance(plan, ShufflePlan)
        assert len(rt.bus.events) == before
        assert planner.maybe_replan(plan) is None
        assert planner.maybe_shrink_inflight(4) is None

    def test_effective_profile_degrades_with_observed_disk(self):
        planner = AdaptivePlanner(self.PROFILE, replan=True)

        class _Evt:
            def __init__(self, seq, ts, kind, cause=None, **attrs):
                self.seq, self.ts, self.kind = seq, ts, kind
                self.cause, self.attrs = cause, attrs

        # 100 MB written over 10 s: 10 MB/s measured against a 200 MB/s
        # nominal per-node disk -> 20x degradation.
        planner.on_event(_Evt(0, 0.0, "spill.write.begin", bytes=int(1e8)))
        planner.on_event(_Evt(1, 10.0, "spill.write.end", cause=0))
        effective = planner.effective_profile()
        per_node = self.PROFILE.disk_bandwidth / self.PROFILE.num_nodes
        scale = 1e7 / per_node
        assert effective.disk_bandwidth == pytest.approx(
            self.PROFILE.disk_bandwidth * scale
        )
        assert effective.disk_seek_s == pytest.approx(
            self.PROFILE.disk_seek_s / scale
        )
        assert planner.signals.measured_disk_bandwidth() == pytest.approx(1e7)

    def test_replan_switches_and_chains_causally(self, rt):
        planner = AdaptivePlanner(self.PROFILE, replan=True)
        planner.attach(rt.bus)
        # In memory with a small fan-out: simple wins at lowering time
        # (merge variants save too few blocks to pay their extra tasks).
        shape = JobShape(total_bytes=10**8, num_maps=4, num_reduces=4)
        plan = planner.plan(ShuffleExpr(shape=shape), job="j-0")
        assert plan.variant == "simple"
        lower = [e for e in rt.bus.events if e.kind == "plan.lower"]
        assert len(lower) == 1 and lower[0].job == "j-0"
        # Mid-job the store shrinks far below the working set and seeks
        # dominate the (fast-streaming) disk: block-coalescing push wins.
        planner.profile_source = lambda: ClusterProfile(
            num_nodes=2, total_cores=8, store_bytes=10**7,
            disk_bandwidth=1e9, nic_bandwidth=5e8, disk_seek_s=5e-2,
        )
        replanned = planner.maybe_replan(plan, job="j-0")
        assert replanned is not None and replanned.variant != "simple"
        replans = [e for e in rt.bus.events if e.kind == "plan.replan"]
        assert len(replans) == 1
        assert replans[0].cause == lower[0].seq
        assert replans[0].attrs["est_after"] < replans[0].attrs["est_before"]
        verdicts = [
            e.attrs["decision"]
            for e in rt.bus.events
            if e.kind == "policy.decision" and e.attrs.get("policy") == "replan"
        ]
        assert verdicts == ["switch"]

    def test_replan_keeps_when_nothing_changed(self, rt):
        planner = AdaptivePlanner(self.PROFILE, replan=True)
        planner.attach(rt.bus)
        shape = JobShape(total_bytes=10**8, num_maps=16, num_reduces=4)
        plan = planner.plan(ShuffleExpr(shape=shape))
        assert planner.maybe_replan(plan) is None
        verdicts = [
            e.attrs["decision"]
            for e in rt.bus.events
            if e.kind == "policy.decision" and e.attrs.get("policy") == "replan"
        ]
        assert verdicts == ["keep"]

    def test_shrink_inflight_under_stall_pressure(self, rt):
        planner = AdaptivePlanner(self.PROFILE, replan=True, stall_threshold=2)
        planner.attach(rt.bus)
        assert planner.maybe_shrink_inflight(4) is None  # no pressure yet
        for _ in range(3):
            rt.bus.emit("stream.backpressure", reason="inflight_windows")
        assert planner.maybe_shrink_inflight(4) == 3
        # Marks reset: the same stalls are not double-counted.
        assert planner.maybe_shrink_inflight(3) is None
        # Floor: a bound of 1 never shrinks, whatever the pressure.
        for _ in range(5):
            rt.bus.emit("stream.backpressure", reason="inflight_windows")
        assert planner.maybe_shrink_inflight(1) is None
        replans = [e for e in rt.bus.events if e.kind == "plan.replan"]
        assert len(replans) == 1
        assert replans[0].attrs["param"] == "max_inflight_windows"


class TestRuntimeWiring:
    def test_planner_for_runtime_off_stays_detached(self):
        rt = make_runtime()
        planner = planner_for_runtime(rt)
        assert planner.replan is False
        assert rt.planner is None  # not registered: zero-cost when off
        assert rt.stage_boundary("stage") is None

    def test_planner_for_runtime_on_attaches_and_registers(self):
        rt = make_runtime(config=RuntimeConfig(replan="on"))
        planner = planner_for_runtime(rt)
        assert rt.planner is planner
        assert planner_for_runtime(rt) is planner  # idempotent
        # The stage-boundary hook reaches the planner...
        shape = JobShape(total_bytes=10**6, num_maps=4, num_reduces=2)
        plan = planner.plan(ShuffleExpr(shape=shape))
        assert rt.stage_boundary("stage", plan=plan) is None  # keep
        # ...and the lowering emitted observable plan events.
        assert any(e.kind == "plan.lower" for e in rt.bus.events)

    def test_config_rule_override_forces_one_rule(self):
        rt = make_runtime(config=RuntimeConfig(planner="empirical"))
        planner = planner_for_runtime(rt)
        shape = JobShape(total_bytes=10**6, num_maps=4, num_reduces=2)
        plan = planner.plan(ShuffleExpr(shape=shape), default_rule="cost")
        assert plan.decided_by == "empirical"


class TestCallSitesResolveThroughThePlanLayer:
    def test_jobspec_auto_records_a_plan(self):
        rt = make_runtime(num_nodes=4, store_mib=256)
        manager = JobManager(rt)
        manager.add_tenant(TenantSpec(name="t"))
        job = manager.submit(JobSpec(name="j", tenant="t", variant="auto"))
        manager.run()
        assert isinstance(job.plan, ShufflePlan)
        assert job.plan.variant == job.planned_variant
        assert job.plan.decided_by == "cost"

    def test_jobspec_prebuilt_expression_is_honoured(self):
        rt = make_runtime(num_nodes=4, store_mib=256)
        manager = JobManager(rt)
        manager.add_tenant(TenantSpec(name="t"))
        expr = ShuffleExpr(
            shape=JobShape(total_bytes=10**5, num_maps=8, num_reduces=4),
            backend="riffle",
        )
        job = manager.submit(
            JobSpec(name="j", tenant="t", variant="auto", plan=expr)
        )
        manager.run()
        assert job.planned_variant == "riffle"
        assert job.plan.decided_by == "explicit"

    def test_streaming_jobspec_carries_a_pinned_streaming_plan(self):
        rt = make_runtime(num_nodes=2)
        manager = JobManager(rt)
        manager.add_tenant(TenantSpec(name="t"))
        job = manager.submit(
            JobSpec(
                name="s", tenant="t", num_maps=2, num_reduces=2,
                stream=StreamSpec(rate_hz=2.0, duration_s=8.0, window_s=4.0),
            )
        )
        manager.run()
        assert job.planned_variant == "streaming"
        assert isinstance(job.plan, ShufflePlan)
        assert job.plan.shape.streaming and job.plan.decided_by == "explicit"

    def test_dataframe_resolves_through_an_attached_planner(self):
        rt = make_runtime(num_nodes=2)
        planner = AdaptivePlanner(ClusterProfile.from_runtime(rt))
        rt.attach_planner(planner)
        data = {"k": np.arange(40) % 5, "v": np.arange(40.0)}
        frame = rt.run(lambda: DistributedFrame.from_arrays(rt, data, 4))
        rt.run(lambda: frame.repartition(2).collect())
        labels = [plan.label for plan in planner.plans]
        assert "repartition" in labels
        assert all(plan.rule == "empirical" for plan in planner.plans)


GOLDEN_JOBS_DIGEST = (
    "8416ed03f05dd43edfd08eae767984a09a0d94f2a13ce922f25f1ec50d0c5780"
)


def _digest(events) -> str:
    lines = [
        f"{e.ts!r}|{e.kind}|{e.node}|{e.job}|{e.task}|{e.obj}|{e.cause}"
        f"|{sorted(e.attrs.items())!r}"
        for e in events
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestZeroCostWhenOff:
    def test_jobs_run_is_bit_for_bit_identical_to_pre_plan_layer(self):
        """The pinned digest was captured before the plan layer existed:
        with ``replan="off"`` the whole event stream -- every timestamp,
        attr, and causal link -- must be unchanged."""
        tenants, specs = mixed_workload(seed=7, num_jobs=8)
        rt = Runtime.create(default_node_spec(), 4, config=RuntimeConfig())
        manager = JobManager(rt)
        for tenant in tenants:
            manager.add_tenant(tenant)
        for spec in specs:
            manager.submit(spec)
        jobs = manager.run()
        assert [j.planned_variant for j in jobs] == [
            "push", "simple", "simple", "simple",
            "riffle", "push", "riffle", "simple",
        ]
        assert len(rt.bus.events) == 1934
        assert _digest(rt.bus.events) == GOLDEN_JOBS_DIGEST
