"""Data skew handling and concurrent shuffles on one runtime."""

import numpy as np
import pytest

from repro.blocks import RealBlock, partition_block, total_records
from repro.common.units import MB
from repro.shuffle import push_based_shuffle, simple_shuffle
from repro.sort import SortOps, sample_bounds, uniform_bounds
from repro.sort.validate import validate_sorted_output

from tests.conftest import make_runtime


def skewed_block(n, seed, hot_fraction=0.6):
    """Keys where a majority of records cluster in a tiny hot range."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 1000, size=int(n * hot_fraction))
    cold = rng.integers(0, 2**32, size=n - len(hot))
    return RealBlock(np.concatenate([hot, cold]).astype(np.uint64))


class TestSkew:
    def test_sampling_partitioner_balances_skewed_keys(self):
        blocks = [skewed_block(2000, seed=i) for i in range(4)]
        num_reduces = 8
        sampled = sample_bounds(blocks, num_reduces, seed=1)
        uniform = uniform_bounds(num_reduces)

        def reducer_sizes(bounds):
            sizes = np.zeros(num_reduces)
            for block in blocks:
                for r, piece in enumerate(partition_block(block, bounds)):
                    sizes[r] += piece.num_records
            return sizes

        sampled_sizes = reducer_sizes(sampled)
        uniform_sizes = reducer_sizes(uniform)
        # Uniform bounds dump the hot range into one reducer; sampled
        # bounds split it.  Compare the largest reducer share.
        assert sampled_sizes.max() < 0.5 * uniform_sizes.max()

    def test_skewed_sort_still_validates(self):
        rt = make_runtime(num_nodes=3)
        blocks = [skewed_block(1500, seed=i) for i in range(6)]
        num_reduces = 6
        bounds = sample_bounds(blocks, num_reduces, seed=2)
        ops = SortOps(bounds)

        def driver():
            stage = rt.remote(lambda b: b)
            parts = [stage.remote(b) for b in blocks]
            refs = push_based_shuffle(
                rt, parts, ops.map, ops.merge, ops.reduce, num_reduces
            )
            return [rt.peek(r) for r in refs if rt.wait(refs, num_returns=len(refs))]

        outputs = rt.run(driver)
        expected = sum(b.num_records for b in blocks)
        checksum = sum(b.checksum() for b in blocks) % 2**64
        validate_sorted_output(outputs, bounds, expected, checksum)

    def test_duplicate_heavy_keys_dont_break_bounds(self):
        """Extreme skew: almost all keys identical."""
        keys = np.full(5000, 42, dtype=np.uint64)
        keys[:10] = np.arange(10)
        block = RealBlock(keys)
        bounds = sample_bounds([block], 4, seed=0)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        pieces = partition_block(block, bounds)
        assert total_records(pieces) == 5000


class TestConcurrentJobs:
    def test_two_shuffles_share_one_runtime(self):
        """Two independent jobs interleave on the same data plane; both
        finish correctly and faster than they would back to back."""
        rt = make_runtime(num_nodes=3, store_mib=1024)

        def make_inputs(tag):
            rng = np.random.default_rng(tag)
            return [rng.integers(0, 1000, size=200).tolist() for _ in range(6)]

        def map_fn(values):
            return [
                [v for v in values if v % 3 == r] for r in range(3)
            ]

        def reduce_fn(*lists):
            return sum(sum(lst) for lst in lists)

        def driver():
            refs_a = simple_shuffle(rt, make_inputs(1), map_fn, reduce_fn, 3)
            refs_b = simple_shuffle(rt, make_inputs(2), map_fn, reduce_fn, 3)
            totals_a = sum(rt.get(refs_a))
            totals_b = sum(rt.get(refs_b))
            return totals_a, totals_b

        total_a, total_b = rt.run(driver)
        assert total_a == sum(sum(vs) for vs in make_inputs(1))
        assert total_b == sum(sum(vs) for vs in make_inputs(2))

    def test_ml_and_sort_coexist(self):
        """A training pipeline and a sort job share the cluster without
        corrupting each other -- the portability story of Fig 1b."""
        from repro.ml import ExoshuffleLoader, SyntheticHiggs
        from repro.ml.loaders import stage_blocks
        from repro.sort import SortJobConfig, run_sort

        rt = make_runtime(num_nodes=3, store_mib=1024)
        data = SyntheticHiggs(num_samples=2000, seed=7, io_scale=10.0)
        refs = rt.run(lambda: stage_blocks(rt, data.training_blocks(4)))
        loader = ExoshuffleLoader(rt, refs, seed=0)

        def driver():
            epoch_refs = loader.submit_epoch(0)
            # While the epoch shuffles, nothing stops another application
            # from running its own shuffle on the same runtime.
            blocks = rt.get(epoch_refs)
            return sum(b.num_records for b in blocks)

        assert rt.run(driver) == 2000
        result = run_sort(
            rt,
            SortJobConfig(
                variant="push*", num_partitions=6, partition_bytes=4 * MB,
                virtual=True,
            ),
        )
        assert result.validated
