"""Extension features: executor failure, replication, dynamic Riffle."""

import numpy as np
import pytest

from repro.blocks import total_records
from repro.common.units import MB
from repro.futures import RuntimeConfig
from repro.shuffle import riffle_shuffle_dynamic
from repro.sort import SortOps, uniform_bounds
from repro.sort.datagen import generate_partitions

from tests.conftest import make_runtime


def _blob(mb):
    return np.zeros(int(mb * MB), dtype=np.uint8)


class TestExecutorFailure:
    def test_executor_death_loses_no_objects(self):
        """§4.2.3: the object store lives in the NodeManager, so killing
        executors mid-job needs no lineage reconstruction."""
        rt = make_runtime(num_nodes=2)
        node_b = rt.cluster.node_ids[1]
        make = rt.remote(lambda: _blob(10)).options(node=node_b)
        slow = rt.remote(lambda x: x.nbytes).options(node=node_b, compute=20.0)

        def driver():
            data = make.remote()
            rt.wait([data], num_returns=1)
            out = slow.remote(data)
            rt.sleep(5.0)  # `slow` is mid-execution
            rt.node_managers[node_b].kill_executors()
            return rt.get(out)

        assert rt.run(driver) == 10 * MB
        assert rt.counters.get("executor_failures") == 1
        # The data object survived in the store: no reconstruction.
        assert rt.counters.get("tasks_resubmitted") == 1  # only `slow`

    def test_executor_failure_recovery_is_fast(self):
        """Unlike node death, there is no detection delay to pay."""
        config = RuntimeConfig(failure_detection_s=30.0)
        rt = make_runtime(num_nodes=2, config=config)
        node_b = rt.cluster.node_ids[1]
        work = rt.remote(lambda: "v").options(node=node_b, compute=2.0)

        def driver():
            ref = work.remote()
            rt.sleep(1.0)
            rt.node_managers[node_b].kill_executors()
            value = rt.get(ref)
            return rt.timestamp(), value

        finished_at, value = rt.run(driver)
        assert value == "v"
        # ~1 s elapsed + a fresh 2 s execution; nowhere near the 30 s
        # node-failure detection timeout.
        assert finished_at < 5.0


class TestReplication:
    def test_replicate_creates_copies_on_distinct_nodes(self):
        rt = make_runtime(num_nodes=3)
        make = rt.remote(lambda: _blob(5))

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.replicate([ref], copies=3)
            return rt.locations_of(ref)

        locations = rt.run(driver)
        assert len(locations) == 3
        assert rt.counters.get("replicas_created") == 2

    def test_replicated_object_survives_node_loss_without_rerun(self):
        config = RuntimeConfig(failure_detection_s=2.0)
        rt = make_runtime(num_nodes=3, config=config)
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.replicate([ref], copies=2)
            rt.cluster.node(victim).fail()
            rt.sleep(5.0)
            return rt.get(ref)

        assert rt.run(driver) == "precious"
        assert rt.counters.get("tasks_resubmitted") == 0

    def test_replicate_validates_copies(self):
        rt = make_runtime(num_nodes=1)

        def driver():
            ref = rt.put(1)
            with pytest.raises(ValueError):
                rt.replicate([ref], copies=0)
            return True

        assert rt.run(driver)

    def test_replicate_caps_at_cluster_size(self):
        rt = make_runtime(num_nodes=2)

        def driver():
            ref = rt.put(_blob(1))
            rt.replicate([ref], copies=10)
            return rt.locations_of(ref)

        assert len(rt.run(driver)) == 2


class TestDynamicRiffle:
    def _run(self, merge_factor=3, merge_threshold_bytes=None):
        rt = make_runtime(num_nodes=3)
        num_parts = 9
        bounds = uniform_bounds(num_parts)
        ops = SortOps(bounds)

        def driver():
            parts = generate_partitions(
                rt, num_parts, 2 * MB, virtual=False, seed=5
            )
            expected = sum(rt.peek(p).num_records for p in parts)
            refs = riffle_shuffle_dynamic(
                rt, parts, ops.map, ops.merge_columns, ops.reduce,
                ops.num_reduces, merge_factor=merge_factor,
                merge_threshold_bytes=merge_threshold_bytes,
            )
            outputs = rt.get(refs)
            return expected, outputs

        expected, outputs = rt.run(driver)
        return rt, expected, outputs

    def test_produces_correct_sort(self):
        rt, expected, outputs = self._run()
        assert total_records(outputs) == expected
        for block in outputs:
            keys = block.keys
            assert (np.sort(keys) == keys).all()

    def test_groups_respect_locality(self):
        """Merges must run where their map outputs already are: the
        introspection-grouped variant moves (almost) nothing extra before
        the reduce stage."""
        rt, _, _ = self._run()
        merge_records = [
            r for r in rt.tasks.values() if "merge" in r.spec.fn_name
        ]
        assert merge_records
        # every merge ran on some node that held its inputs: proxied by
        # modest total network traffic (reduces must still fetch columns).
        assert rt.cluster.network_bytes_sent < 2.5 * 9 * 2 * MB

    def test_byte_threshold_flushes_smaller_groups(self):
        _, _, outputs_small = self._run(
            merge_factor=100, merge_threshold_bytes=3 * MB
        )
        assert total_records(outputs_small) > 0
