"""Smoke tests: every example script parses, documents itself, and the
fast ones run end to end."""

import ast
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5  # the deliverable floor, with margin


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_with_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} missing a docstring"
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names, f"{path.name} missing main()"


def test_quickstart_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "sum of squares" in proc.stdout
    assert "top words" in proc.stdout


def test_fault_tolerance_example_runs_end_to_end():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "fault_tolerance.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "recovery overhead" in proc.stdout
    assert "validated=True" in proc.stdout
