"""Cross-cutting properties: determinism and shuffle correctness under
randomised parameters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MB
from repro.futures import Runtime
from repro.sort import SortJobConfig, run_sort

from tests.conftest import make_node_spec, make_runtime


class TestDeterminism:
    def _run_sort(self):
        rt = make_runtime(num_nodes=3, store_mib=256)
        result = run_sort(
            rt,
            SortJobConfig(
                variant="push*",
                num_partitions=12,
                partition_bytes=30 * MB,
                virtual=True,
            ),
        )
        return result.sort_seconds, rt.stats()

    def test_identical_runs_produce_identical_traces(self):
        """The whole stack is deterministic: same inputs, same JCT, same
        counters -- byte for byte."""
        (t1, s1), (t2, s2) = self._run_sort(), self._run_sort()
        assert t1 == t2
        assert s1 == s2

    def test_different_variants_same_correctness(self):
        for variant in ("simple", "push"):
            rt = make_runtime(num_nodes=2)
            result = run_sort(
                rt,
                SortJobConfig(
                    variant=variant,
                    num_partitions=6,
                    partition_bytes=2 * MB,
                    virtual=False,
                    seed=42,
                ),
            )
            assert result.validated


@settings(max_examples=12, deadline=None)
@given(
    variant=st.sampled_from(["simple", "merge", "magnet", "push", "push*"]),
    num_partitions=st.integers(min_value=1, max_value=10),
    num_nodes=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_every_variant_sorts_correctly(
    variant, num_partitions, num_nodes, seed
):
    """Any variant x cluster-size x partition-count x seed must produce a
    validated (sorted, conserving) output on real data."""
    rt = make_runtime(num_nodes=num_nodes)
    result = run_sort(
        rt,
        SortJobConfig(
            variant=variant,
            num_partitions=num_partitions,
            partition_bytes=1 * MB,
            virtual=False,
            seed=seed,
        ),
    )
    assert result.validated


@settings(max_examples=10, deadline=None)
@given(
    store_mib=st.integers(min_value=24, max_value=96),
    partitions=st.integers(min_value=4, max_value=12),
)
def test_property_memory_pressure_never_breaks_correctness(store_mib, partitions):
    """However small the store (forcing spills, fallbacks, churn), results
    stay correct -- liveness and safety of the memory subsystem."""
    rt = make_runtime(num_nodes=2, store_mib=store_mib)
    result = run_sort(
        rt,
        SortJobConfig(
            variant="push*",
            num_partitions=partitions,
            partition_bytes=16 * MB,
            virtual=True,
        ),
    )
    assert result.validated
