"""The churn test plane: elastic membership, autoscaling, shared-tier
durability.

Pins the elasticity contract from three directions:

- *Lifecycle*: the :class:`~repro.cluster.ClusterMembership` state
  machine and the runtime's ``add_node`` / ``drain_node`` /
  ``remove_node`` verbs (driver protection, event emission, scheduler
  visibility).
- *Churn properties*: hypothesis-generated join/drain/remove/crash
  sequences interleaved with task submission keep every invariant
  family green and never place a task on a departed node.
- *Durability*: with ``spill_backend="shared"`` a planned departure
  after spilling costs zero lineage recomputes, while the local-disk
  backend must re-execute the lost maps -- with the causal fault chain
  visible on the event bus.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import InvariantChecker
from repro.cluster import ClusterMembership
from repro.common.units import MB
from repro.futures import RuntimeConfig
from repro.futures.policies.base import AutoscaleView
from repro.futures.policies.defaults import ThresholdAutoscalePolicy

from benchmarks.bench_elastic_churn import run_churn_shuffle
from tests.conftest import make_runtime


# -- membership state machine -------------------------------------------------
class TestMembershipLifecycle:
    def test_initial_members_active(self):
        m = ClusterMembership(["a", "b"])
        assert m.active_nodes() == ["a", "b"]
        assert m.is_active("a") and m.schedulable("a")
        assert m.active_count() == 2 and m.draining_count() == 0

    def test_join_drain_remove_path(self):
        m = ClusterMembership(["a"])
        m.add("b")
        assert m.is_active("b")
        m.drain("b")
        assert m.is_draining("b") and m.schedulable("b")
        assert not m.is_active("b")
        m.remove("b")
        assert m.is_removed("b") and not m.schedulable("b")
        assert m.removed_nodes() == ["b"]

    def test_remove_straight_from_active(self):
        m = ClusterMembership(["a", "b"])
        m.remove("b")
        assert m.is_removed("b")

    def test_illegal_transitions_raise(self):
        m = ClusterMembership(["a"])
        with pytest.raises(ValueError):
            m.add("a")  # already a member
        with pytest.raises(ValueError):
            m.drain("x")  # not a member
        m.remove("a")
        with pytest.raises(ValueError):
            m.drain("a")  # removed nodes cannot drain
        with pytest.raises(ValueError):
            m.remove("a")  # already removed

    def test_snapshot_is_stringly_typed(self):
        m = ClusterMembership(["a", "b"])
        m.drain("b")
        assert m.snapshot() == {"a": "active", "b": "draining"}


# -- runtime verbs ------------------------------------------------------------
class TestRuntimeElasticity:
    def test_driver_node_protected(self):
        rt = make_runtime(num_nodes=2)
        driver = rt.driver_node_id
        with pytest.raises(ValueError):
            rt.drain_node(driver)
        with pytest.raises(ValueError):
            rt.remove_node(driver)

    def test_add_node_joins_fabric_and_membership(self):
        rt = make_runtime(num_nodes=2)
        new_id = rt.add_node()
        assert new_id in rt.node_managers
        assert rt.membership.is_active(new_id)
        assert rt.cluster.node(new_id).alive
        joins = [
            e for e in rt.bus.events
            if e.kind == "cluster.membership" and e.attrs["action"] == "join"
        ]
        assert joins and joins[-1].node == str(new_id)
        assert joins[-1].attrs["active"] == 3

    def test_new_node_receives_work(self):
        rt = make_runtime(num_nodes=1, cores=1)
        work = rt.remote(lambda i: i + 1)

        def driver():
            new_id = rt.add_node()
            refs = [work.options(node=new_id).remote(i) for i in range(3)]
            return rt.get(refs), new_id

        (values, new_id) = rt.run(driver)
        assert values == [1, 2, 3]
        placed = [
            e.node for e in rt.bus.events if e.kind == "task.place"
        ]
        assert str(new_id) in placed

    def test_drained_node_gets_no_new_placements(self):
        rt = make_runtime(num_nodes=3)
        victim = list(rt.cluster.node_ids)[-1]
        work = rt.remote(lambda i: i)

        def driver():
            rt.drain_node(victim)
            refs = [work.remote(i) for i in range(8)]
            return rt.get(refs)

        assert rt.run(driver) == list(range(8))
        placed_after_drain = [
            e.node for e in rt.bus.events if e.kind == "task.place"
        ]
        assert str(victim) not in placed_after_drain

    def test_remove_resubmits_interrupted_work(self):
        rt = make_runtime(num_nodes=2)
        victim = list(rt.cluster.node_ids)[1]
        slow = rt.remote(lambda i: i * 10).options(compute=5.0, node=victim)

        def driver():
            refs = [slow.remote(i) for i in range(2)]
            rt.sleep(0.5)  # let them start on the victim
            rt.remove_node(victim)
            return rt.get(refs)

        assert rt.run(driver) == [0, 10]
        removes = [
            e for e in rt.bus.events
            if e.kind == "cluster.membership" and e.attrs["action"] == "remove"
        ]
        assert len(removes) == 1
        assert removes[0].attrs["casualties"] >= 1
        assert rt.counters.get("tasks_resubmitted") >= 1

    def test_membership_counters(self):
        rt = make_runtime(num_nodes=2)
        nid = rt.add_node()
        rt.drain_node(nid)
        rt.remove_node(nid)
        assert rt.counters.get("nodes_added") == 1
        assert rt.counters.get("nodes_drained") == 1
        assert rt.counters.get("nodes_removed") == 1


# -- threshold autoscaler -----------------------------------------------------
def _view(**overrides):
    base = dict(
        now=0.0, active_nodes=2, draining_nodes=0, pending_tasks=0,
        queued_allocations=0, total_slots=8, min_nodes=1, max_nodes=4,
    )
    base.update(overrides)
    return AutoscaleView(**base)


class TestThresholdAutoscalePolicy:
    def test_grows_under_pressure(self):
        policy = ThresholdAutoscalePolicy(grow_pressure=2.0)
        decision = policy.decide(_view(pending_tasks=40))
        assert decision.action == "grow" and decision.count == 1

    def test_holds_in_band(self):
        policy = ThresholdAutoscalePolicy(grow_pressure=2.0)
        assert policy.decide(_view(pending_tasks=8)).action == "hold"

    def test_shrinks_when_idle(self):
        policy = ThresholdAutoscalePolicy()
        assert policy.decide(_view()).action == "shrink"

    def test_respects_bounds(self):
        policy = ThresholdAutoscalePolicy(grow_pressure=1.0)
        at_max = _view(pending_tasks=100, active_nodes=4, max_nodes=4)
        assert policy.decide(at_max).action == "hold"
        at_min = _view(active_nodes=1, min_nodes=1)
        assert policy.decide(at_min).action == "hold"

    def test_never_shrinks_while_draining(self):
        policy = ThresholdAutoscalePolicy()
        assert policy.decide(_view(draining_nodes=1)).action == "hold"

    def test_allocation_backlog_counts_as_pressure(self):
        policy = ThresholdAutoscalePolicy(grow_pressure=2.0)
        decision = policy.decide(_view(queued_allocations=40))
        assert decision.action == "grow"


class TestAutoscaledRun:
    def _elastic_config(self):
        return RuntimeConfig(
            autoscale_policy="threshold",
            autoscale_min_nodes=2,
            autoscale_max_nodes=4,
            autoscale_grow_pressure=1.0,
            autoscale_interval_s=0.5,
        )

    def test_burst_grows_then_idle_shrinks_back(self):
        rt = make_runtime(num_nodes=2, cores=2, config=self._elastic_config())
        work = rt.remote(lambda i: i).options(compute=3.0)

        def driver():
            return rt.get([work.remote(i) for i in range(40)])

        assert rt.run(driver) == list(range(40))
        rt.env.run()  # drain trailing autoscale ticks (scale-in)
        assert rt.counters.get("nodes_added") >= 1
        assert len(rt.node_managers) > 2
        # Scale-in released the extra capacity back down to min_nodes.
        assert rt.membership.active_count() == 2
        decisions = [
            e.attrs["decision"] for e in rt.bus.events
            if e.kind == "policy.decision"
            and e.attrs.get("policy") == "autoscale:threshold"
        ]
        assert "grow" in decisions and "shrink" in decisions
        assert not InvariantChecker(rt).check()

    def test_static_run_arms_no_autoscaler(self):
        rt = make_runtime(num_nodes=2)  # default autoscale_policy="none"
        work = rt.remote(lambda i: i)
        assert rt.run(lambda: rt.get([work.remote(i) for i in range(4)]))
        assert rt.counters.get("nodes_added") == 0
        assert not any(
            e.kind == "cluster.membership" for e in rt.bus.events
        )


# -- churn properties ---------------------------------------------------------
def _no_placement_after_departure(rt):
    """No ``task.place`` on a node once its removal event was emitted."""
    removed_at = {}
    for event in rt.bus.events:
        if (
            event.kind == "cluster.membership"
            and event.attrs.get("action") == "remove"
        ):
            removed_at.setdefault(event.node, event.seq)
    offenders = [
        (event.node, event.seq)
        for event in rt.bus.events
        if event.kind == "task.place"
        and event.node in removed_at
        and event.seq > removed_at[event.node]
    ]
    return offenders


class TestChurnProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["batch", "join", "drain", "remove", "crash"]),
            min_size=3,
            max_size=9,
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_churn_sequences_keep_invariants(self, ops, seed):
        rng = random.Random(seed)
        config = RuntimeConfig(failure_detection_s=0.5)
        rt = make_runtime(num_nodes=3, config=config)
        work = rt.remote(lambda i: i * 3)
        refs = []
        expected = []

        def workers():
            return [
                nid for nid in rt.membership.active_nodes()
                if nid != rt.driver_node_id
                and rt.node_managers[nid].node.alive
            ]

        def driver():
            for op in ops:
                if op == "batch":
                    start = len(expected)
                    for i in range(start, start + 3):
                        refs.append(work.remote(i))
                        expected.append(i * 3)
                elif op == "join":
                    rt.add_node()
                elif op == "drain":
                    pool = workers()
                    if pool:
                        rt.drain_node(rng.choice(pool))
                elif op == "remove":
                    pool = [
                        nid for nid in rt.node_managers
                        if nid != rt.driver_node_id
                        and rt.membership.schedulable(nid)
                        and rt.node_managers[nid].node.alive
                    ]
                    if pool:
                        rt.remove_node(rng.choice(pool))
                elif op == "crash":
                    pool = workers()
                    if pool:
                        node = rt.cluster.node(rng.choice(pool))
                        node.fail()
                        rt.env.call_later(2.0, node.restart)
                rt.sleep(0.2)
            # A trailing batch exercises the post-churn cluster shape.
            start = len(expected)
            for i in range(start, start + 3):
                refs.append(work.remote(i))
                expected.append(i * 3)
            return rt.get(refs)

        assert rt.run(driver) == expected
        rt.env.run()  # drain restarts/drain completions to quiesce
        violations = InvariantChecker(rt).check()
        assert not violations, violations
        assert _no_placement_after_departure(rt) == []

    def test_draining_node_removal_still_blocks_placement(self):
        """Drain-then-remove mid-run: departed node never re-used."""
        rt = make_runtime(num_nodes=3)
        victim = list(rt.cluster.node_ids)[-1]
        work = rt.remote(lambda i: i)

        def driver():
            rt.drain_node(victim)
            first = [work.remote(i) for i in range(4)]
            rt.get(first)
            rt.remove_node(victim)
            second = [work.remote(i) for i in range(4)]
            return rt.get(second)

        assert rt.run(driver) == list(range(4))
        assert _no_placement_after_departure(rt) == []


# -- shared-tier durability ---------------------------------------------------
class TestSharedTierDurability:
    def test_shared_backend_survives_departure_without_recompute(self):
        metrics = run_churn_shuffle("shared", join=False, maps_per_node=3)
        rt = metrics["runtime"]
        assert metrics["correct"]
        assert metrics["reconstructions"] == 0
        assert rt.counters.get("shared_bytes_read") > 0
        restores = [
            e for e in rt.bus.events
            if e.kind == "spill.restore.begin"
            and e.attrs.get("backend") == "shared"
        ]
        assert restores, "reduces must restore blocks from the shared tier"
        assert not InvariantChecker(rt).check()

    def test_local_backend_pays_lineage_recomputes(self):
        metrics = run_churn_shuffle("local", join=False, maps_per_node=3)
        rt = metrics["runtime"]
        assert metrics["correct"]
        assert metrics["reconstructions"] > 0
        # Every retry chains causally back to the departure event.
        retries = [e for e in rt.bus.events if e.kind == "task.retry"]
        assert retries
        chained = [
            e for e in retries
            if any(
                parent.kind == "cluster.membership"
                and parent.attrs.get("action") == "remove"
                for parent in rt.bus.causal_chain(e)
            )
        ]
        assert chained, "task.retry must link causally to the departure"
        assert not InvariantChecker(rt).check()

    def test_shared_spill_writes_tagged_on_bus(self):
        metrics = run_churn_shuffle("shared", join=False, maps_per_node=3)
        rt = metrics["runtime"]
        writes = [
            e for e in rt.bus.events
            if e.kind == "spill.write.begin"
            and e.attrs.get("backend") == "shared"
        ]
        assert writes
        assert rt.counters.get("shared_bytes_written") > 0
