"""Direct unit tests for runtime shuffle selection crossover boundaries.

The rule: simple shuffle iff the working set fits in ``MEMORY_HEADROOM``
of aggregate store memory AND partitions are below
``PARTITION_CROSSOVER``; push otherwise.  These tests pin the exact
boundary behaviour and that ``describe_choice`` reports the same
capacity figure the decision used.
"""

from conftest import make_runtime

from repro.shuffle.push import push_based_shuffle
from repro.shuffle.select import (
    MEMORY_HEADROOM,
    PARTITION_CROSSOVER,
    aggregate_store_bytes,
    choose_shuffle,
    describe_choice,
)
from repro.shuffle.simple import simple_shuffle


def small_bytes(rt):
    """A working set comfortably inside the in-memory threshold."""
    return int(MEMORY_HEADROOM * aggregate_store_bytes(rt)) // 2


class TestPartitionCrossover:
    def test_below_crossover_in_memory_is_simple(self):
        rt = make_runtime()
        chosen = choose_shuffle(rt, small_bytes(rt), PARTITION_CROSSOVER - 1)
        assert chosen is simple_shuffle

    def test_at_crossover_is_push(self):
        rt = make_runtime()
        chosen = choose_shuffle(rt, small_bytes(rt), PARTITION_CROSSOVER)
        assert chosen is push_based_shuffle

    def test_far_below_crossover_is_simple(self):
        rt = make_runtime()
        assert choose_shuffle(rt, small_bytes(rt), 1) is simple_shuffle


class TestMemoryCrossover:
    def test_exactly_at_headroom_counts_as_in_memory(self):
        rt = make_runtime()
        boundary = int(MEMORY_HEADROOM * aggregate_store_bytes(rt))
        assert choose_shuffle(rt, boundary, 10) is simple_shuffle

    def test_one_byte_over_headroom_is_push(self):
        rt = make_runtime()
        boundary = int(MEMORY_HEADROOM * aggregate_store_bytes(rt))
        assert choose_shuffle(rt, boundary + 1, 10) is push_based_shuffle

    def test_big_data_and_many_partitions_is_push(self):
        rt = make_runtime()
        total = 10 * aggregate_store_bytes(rt)
        assert choose_shuffle(rt, total, 1000) is push_based_shuffle


class TestAggregateStoreBytes:
    def test_counts_only_alive_nodes(self):
        rt = make_runtime(num_nodes=2)
        full = aggregate_store_bytes(rt)
        nodes = list(rt.cluster)
        nodes[0].fail()
        assert aggregate_store_bytes(rt) == full // 2

    def test_node_death_flips_the_choice(self):
        rt = make_runtime(num_nodes=2)
        # Sized to fit with both stores but not with one.
        total = int(MEMORY_HEADROOM * aggregate_store_bytes(rt)) * 3 // 4
        assert choose_shuffle(rt, total, 10) is simple_shuffle
        list(rt.cluster)[0].fail()
        assert choose_shuffle(rt, total, 10) is push_based_shuffle


class TestDescribeChoice:
    def test_reports_the_figure_that_drove_the_decision(self):
        rt = make_runtime()
        info = describe_choice(rt, small_bytes(rt), 10)
        assert info["algorithm"] == "simple_shuffle"
        assert info["aggregate_store_bytes"] == aggregate_store_bytes(rt)
        assert info["num_partitions"] == 10

    def test_description_consistent_after_node_death(self):
        rt = make_runtime(num_nodes=2)
        list(rt.cluster)[0].fail()
        total = int(MEMORY_HEADROOM * aggregate_store_bytes(rt)) // 2
        info = describe_choice(rt, total, 10)
        # The reported capacity is the alive-node figure the rule used,
        # and re-deciding from that figure gives the same algorithm.
        assert info["aggregate_store_bytes"] == aggregate_store_bytes(rt)
        assert (
            choose_shuffle(rt, total, 10).__name__ == info["algorithm"]
        )
