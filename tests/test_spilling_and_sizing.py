"""Unit tests for the spill manager's mechanics and size accounting."""

import numpy as np
import pytest

from repro.common.units import MB
from repro.futures.sizing import OBJECT_OVERHEAD_BYTES, size_of

from tests.conftest import make_runtime


class TestSizing:
    def test_declared_size_wins(self):
        class Declared:
            size_bytes = 12345

        assert size_of(Declared()) == 12345 + OBJECT_OVERHEAD_BYTES

    def test_numpy_arrays(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert size_of(arr) == 8000 + OBJECT_OVERHEAD_BYTES

    def test_scalars_and_none(self):
        for value in (None, True, 7, 3.14):
            assert size_of(value) == 8 + OBJECT_OVERHEAD_BYTES

    def test_bytes_and_strings(self):
        assert size_of(b"abcd") == 4 + OBJECT_OVERHEAD_BYTES
        assert size_of("héllo") == len("héllo".encode()) + OBJECT_OVERHEAD_BYTES

    def test_containers_sum_members(self):
        inner = np.zeros(100, dtype=np.uint8)
        listed = size_of([inner, inner])
        assert listed >= 2 * 100

    def test_dicts(self):
        d = {"key": np.zeros(50, dtype=np.uint8)}
        assert size_of(d) > 50

    def test_opaque_objects_get_flat_charge(self):
        class Opaque:
            pass

        assert size_of(Opaque()) == 256 + OBJECT_OVERHEAD_BYTES


class TestSpillMechanics:
    def _spilled_runtime(self, store_mib=32, n=8, blob_mb=8):
        rt = make_runtime(num_nodes=1, store_mib=store_mib)
        make = rt.remote(
            lambda i: (i, np.zeros(blob_mb * MB, dtype=np.uint8))
        )

        def driver():
            refs = [make.remote(i) for i in range(n)]
            rt.wait(refs, num_returns=len(refs))
            return refs

        refs = rt.run(driver)
        return rt, refs

    def test_spilled_objects_tracked_with_slots(self):
        rt, refs = self._spilled_runtime()
        spill = rt.driver_manager.spill
        spilled = [r for r in refs if spill.is_spilled(r.object_id)]
        assert spilled
        for ref in spilled:
            slot = spill.slot(ref.object_id)
            assert slot.size > 8 * MB * 0.99
            assert slot.file.num_objects >= 1

    def test_sequential_restore_skips_seeks(self):
        """Restoring a fused file front-to-back pays one seek total."""
        rt, refs = self._spilled_runtime(store_mib=32, n=8, blob_mb=8)
        spill = rt.driver_manager.spill
        node = rt.cluster.nodes[0]
        spilled = [r for r in refs if spill.is_spilled(r.object_id)]
        by_position = sorted(
            spilled, key=lambda r: (spill.slot(r.object_id).file.file_id,
                                    spill.slot(r.object_id).index)
        )
        ops_before = node.disk.ops_served
        busy_before = node.disk.busy_seconds
        bytes_total = 0

        def driver():
            nonlocal bytes_total
            for ref in by_position:
                slot = spill.slot(ref.object_id)
                bytes_total += slot.size
                rt._driver.block_on(spill.restore_read(ref.object_id))
            return None

        rt.run(driver)
        busy = node.disk.busy_seconds - busy_before
        # Bandwidth time plus at most one seek per file touched.
        files = {spill.slot(r.object_id).file.file_id for r in by_position}
        bandwidth_time = bytes_total / node.disk.bandwidth
        assert busy <= bandwidth_time + (len(files) + 1) * node.disk.per_op_latency

    def test_out_of_order_restore_pays_seeks(self):
        rt, refs = self._spilled_runtime(store_mib=32, n=8, blob_mb=8)
        spill = rt.driver_manager.spill
        node = rt.cluster.nodes[0]
        spilled = [r for r in refs if spill.is_spilled(r.object_id)]
        if len(spilled) < 3:
            pytest.skip("not enough spilled objects")
        busy_before = node.disk.busy_seconds
        scrambled = spilled[::-1]

        def driver():
            for ref in scrambled:
                rt._driver.block_on(spill.restore_read(ref.object_id))
            return None

        rt.run(driver)
        busy = node.disk.busy_seconds - busy_before
        bytes_total = sum(spill.slot(r.object_id).size for r in scrambled)
        bandwidth_time = bytes_total / node.disk.bandwidth
        # Reverse order: nearly every read seeks.
        assert busy >= bandwidth_time + (len(scrambled) - 1) * node.disk.per_op_latency * 0.9

    def test_forget_releases_slot_and_file_bytes(self):
        rt, refs = self._spilled_runtime()
        spill = rt.driver_manager.spill
        victim = next(r for r in refs if spill.is_spilled(r.object_id))
        slot = spill.slot(victim.object_id)
        live_before = slot.file.live_bytes
        spill.forget(victim.object_id)
        assert not spill.is_spilled(victim.object_id)
        assert slot.file.live_bytes == live_before - slot.size

    def test_spill_counters_consistent(self):
        rt, _ = self._spilled_runtime()
        written = rt.counters.get("spill_bytes_written")
        files = rt.counters.get("spill_files")
        assert written > 0 and files > 0
        # Fused: average file well above a single 8 MB object.
        assert written / files >= 8 * MB
