"""Additional property-based coverage: byte servers, partitioner bounds,
heterogeneous clusters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.blocks import RealBlock
from repro.cluster import Cluster, ClusterSpec
from repro.simcore import BandwidthResource, Environment
from repro.sort import sample_bounds, uniform_bounds

from tests.conftest import make_node_spec


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=0, max_value=10**7), min_size=1, max_size=20
    ),
    bandwidth=st.floats(min_value=1e3, max_value=1e9),
    latency=st.floats(min_value=0.0, max_value=0.1),
)
def test_property_bandwidth_server_conserves_time_and_bytes(
    sizes, bandwidth, latency
):
    """Total busy time equals the sum of per-op service times, and the
    last completion lands exactly at the busy-time mark (FIFO, no gaps)."""
    env = Environment()
    server = BandwidthResource(env, bandwidth, per_op_latency=latency)
    done_times = []

    def proc():
        for size in sizes:
            yield server.transfer(size)
            done_times.append(env.now)

    env.process(proc())
    env.run()
    expected_busy = sum(latency + s / bandwidth for s in sizes)
    assert server.busy_seconds == pytest.approx(expected_busy)
    assert server.bytes_served == sum(sizes)
    assert server.ops_served == len(sizes)
    assert done_times[-1] == pytest.approx(expected_busy)


@settings(max_examples=40, deadline=None)
@given(
    num_reduces=st.integers(min_value=1, max_value=64),
    key_space=st.integers(min_value=64, max_value=2**32),
)
def test_property_uniform_bounds_are_valid_cut_points(num_reduces, key_space):
    bounds = uniform_bounds(num_reduces, key_space)
    assert len(bounds) == num_reduces - 1
    assert all(0 < b < key_space for b in bounds)
    assert all(a < b for a, b in zip(bounds, bounds[1:]))


@settings(max_examples=30, deadline=None)
@given(
    num_records=st.integers(min_value=1, max_value=3000),
    num_reduces=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_sampled_bounds_strictly_ascending(
    num_records, num_reduces, seed
):
    blocks = [RealBlock.generate(num_records, seed=seed)]
    bounds = sample_bounds(blocks, num_reduces, seed=seed)
    assert len(bounds) == num_reduces - 1
    assert all(a < b for a, b in zip(bounds, bounds[1:]))


class TestHeterogeneousClusters:
    def test_mixed_node_specs(self):
        small = make_node_spec(cores=2)
        big = make_node_spec(cores=16)
        spec = ClusterSpec(nodes=[small, big, small])
        env = Environment()
        cluster = Cluster(env, spec)
        assert len(cluster) == 3
        assert spec.total_cores == 20
        cores = [node.spec.cores for node in cluster.nodes]
        assert cores == [2, 16, 2]

    def test_runtime_on_heterogeneous_cluster(self):
        from repro.futures import Runtime

        small = make_node_spec(cores=1)
        big = make_node_spec(cores=8)
        env = Environment()
        cluster = Cluster(env, ClusterSpec(nodes=[small, big]))
        rt = Runtime(cluster, env=env)
        work = rt.remote(lambda: 1).options(compute=1.0)

        def driver():
            refs = [work.remote() for _ in range(9)]
            rt.wait(refs, num_returns=len(refs))
            return sum(rt.get(refs))

        assert rt.run(driver) == 9
        # Load-aware spread: the big node should host most of the work.
        big_tasks = sum(
            1
            for record in rt.tasks.values()
            if record.assigned_node == cluster.node_ids[1]
            and record.spec.options.compute == 1.0
        )
        assert big_tasks >= 6
