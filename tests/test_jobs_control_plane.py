"""The multi-tenant job control plane: lifecycle, admission, fairness,
planning, accounting, and determinism."""

import pytest
from conftest import make_runtime

from repro.chaos import expected_output
from repro.common.errors import (
    AdmissionQueueFullError,
    JobCancelledError,
    TenantQuotaExceededError,
    UnknownTenantError,
)
from repro.common.rng import JOB_ARRIVAL_STREAM, named_rng, register_stream
from repro.futures import FairShareScheduler
from repro.jobs import (
    JobManager,
    JobShape,
    JobSpec,
    JobState,
    ShufflePlanner,
    TenantQuota,
    TenantSpec,
    mixed_workload,
    run_jobs,
)


def make_manager(num_nodes=4, **kwargs):
    rt = make_runtime(num_nodes=num_nodes, store_mib=256)
    return JobManager(rt, **kwargs)


class TestLifecycle:
    def test_done_job_walks_the_states(self):
        manager = make_manager()
        manager.add_tenant(TenantSpec(name="t"))
        job = manager.submit(JobSpec(name="j", tenant="t", variant="simple"))
        assert job.state is JobState.QUEUED
        manager.run()
        assert job.state is JobState.DONE
        assert job.queue_wait is not None and job.duration is not None
        assert job.output == expected_output(0)

    def test_auto_variant_is_resolved_and_recorded(self):
        manager = make_manager()
        manager.add_tenant(TenantSpec(name="t"))
        job = manager.submit(JobSpec(name="j", tenant="t", variant="auto"))
        manager.run()
        assert job.state is JobState.DONE
        assert job.planned_variant in (
            "simple", "riffle", "riffle_dynamic", "magnet", "push"
        )

    def test_failed_job_records_error_and_spares_siblings(self):
        manager = make_manager()
        manager.add_tenant(TenantSpec(name="t", quota=TenantQuota(max_concurrent_jobs=2)))
        bad = manager.submit(JobSpec(name="bad", tenant="t", variant="nonsense"))
        good = manager.submit(JobSpec(name="good", tenant="t", variant="simple"))
        manager.run()
        assert bad.state is JobState.FAILED
        assert isinstance(bad.error, ValueError)
        assert good.state is JobState.DONE

    def test_cancel_queued_job(self):
        manager = make_manager()
        manager.add_tenant(TenantSpec(name="t"))
        job = manager.submit(JobSpec(name="j", tenant="t"))
        manager.cancel(job)
        assert job.state is JobState.CANCELLED
        assert isinstance(job.error, JobCancelledError)
        manager.run()  # nothing left to do; must not hang or resurrect it
        assert job.state is JobState.CANCELLED


class TestAdmission:
    def test_unknown_tenant_rejected(self):
        manager = make_manager()
        with pytest.raises(UnknownTenantError):
            manager.submit(JobSpec(name="j", tenant="ghost"))
        (job,) = manager.jobs.values()
        assert job.state is JobState.REJECTED

    def test_over_quota_footprint_rejected_with_typed_error(self):
        manager = make_manager()
        manager.add_tenant(
            TenantSpec(name="t", quota=TenantQuota(max_store_bytes=1024))
        )
        with pytest.raises(TenantQuotaExceededError) as info:
            manager.submit(
                JobSpec(name="big", tenant="t", store_bytes_estimate=2048)
            )
        assert info.value.tenant == "t"
        assert info.value.needed == 2048 and info.value.limit == 1024
        (job,) = manager.jobs.values()
        assert job.state is JobState.REJECTED and job.error is info.value

    def test_bounded_queue_backpressure(self):
        manager = make_manager()
        manager.add_tenant(
            TenantSpec(name="t", quota=TenantQuota(max_queued_jobs=2))
        )
        manager.submit(JobSpec(name="a", tenant="t"))
        manager.submit(JobSpec(name="b", tenant="t"))
        with pytest.raises(AdmissionQueueFullError):
            manager.submit(JobSpec(name="c", tenant="t"))

    def test_concurrency_cap_defers_admission(self):
        manager = make_manager()
        manager.add_tenant(
            TenantSpec(name="t", quota=TenantQuota(max_concurrent_jobs=1))
        )
        first = manager.submit(JobSpec(name="a", tenant="t", variant="simple"))
        second = manager.submit(JobSpec(name="b", tenant="t", variant="simple"))
        manager.run()
        assert first.state is JobState.DONE
        assert second.state is JobState.DONE
        # Serialised: the second was admitted only after the first freed
        # its quota slot, i.e. at (or after) the first's finish time.
        assert second.admitted_at >= first.finished_at

    def test_store_bytes_quota_serialises_admission(self):
        manager = make_manager()
        estimate = 4096
        manager.add_tenant(
            TenantSpec(
                name="t",
                quota=TenantQuota(
                    max_concurrent_jobs=4, max_store_bytes=estimate
                ),
            )
        )
        jobs = [
            manager.submit(
                JobSpec(
                    name=f"j{i}",
                    tenant="t",
                    variant="simple",
                    store_bytes_estimate=estimate,
                )
            )
            for i in range(2)
        ]
        manager.run()
        assert all(job.state is JobState.DONE for job in jobs)
        assert jobs[1].admitted_at >= jobs[0].finished_at


class TestFairness:
    def test_sixteen_jobs_four_tenants_oracle_and_ratio(self):
        tenants, specs = mixed_workload(seed=0, num_jobs=16)
        report = run_jobs(specs, tenants)
        assert report.all_done
        assert report.incorrect == []
        assert report.violations == []
        assert report.completion_ratio is not None
        assert report.completion_ratio <= 2.0

    def test_weighted_tenant_gets_more_concurrent_service(self):
        rt = make_runtime(num_nodes=2, store_mib=256)
        manager = JobManager(rt)
        quota = TenantQuota(max_concurrent_jobs=1)
        manager.add_tenant(TenantSpec(name="heavy", weight=4.0, quota=quota))
        manager.add_tenant(TenantSpec(name="light", weight=1.0, quota=quota))
        heavy = manager.submit(
            JobSpec(name="h", tenant="heavy", variant="simple")
        )
        light = manager.submit(
            JobSpec(name="l", tenant="light", variant="simple")
        )
        manager.run()
        assert heavy.state is JobState.DONE and light.state is JobState.DONE
        # Contending for the same slots, the 4x-weight job finishes first.
        assert heavy.finished_at <= light.finished_at

    def test_fair_share_scheduler_installed_once(self):
        rt = make_runtime()
        manager = JobManager(rt)
        assert isinstance(rt.scheduler, FairShareScheduler)
        again = JobManager(rt)
        assert again.fair is manager.fair  # reused, not replaced


class TestAccounting:
    def test_per_job_buckets_sum_to_global(self):
        tenants, specs = mixed_workload(seed=3, num_jobs=6)
        report = run_jobs(specs, tenants)
        assert report.violations == []  # includes the accounting check
        keys = set()
        for bucket in report.job_stats.values():
            keys.update(bucket)
        assert "tasks_finished" in keys and "compute_seconds" in keys
        for key in keys:
            total = sum(b.get(key, 0.0) for b in report.job_stats.values())
            assert total == pytest.approx(report.stats.get(key, 0.0))

    def test_each_done_job_ran_tasks(self):
        tenants, specs = mixed_workload(seed=1, num_jobs=4)
        report = run_jobs(specs, tenants)
        for job in report.jobs:
            bucket = report.job_stats.get(job.job_id, {})
            assert bucket.get("tasks_finished", 0) > 0
            assert bucket.get("task_output_bytes", 0) > 0


class TestPlanner:
    def make_planner(self):
        rt = make_runtime(num_nodes=4, store_mib=256)
        return ShufflePlanner.for_runtime(rt)

    def test_small_in_memory_few_partitions_prefers_simple(self):
        planner = self.make_planner()
        shape = JobShape(total_bytes=10 * 1024**2, num_maps=8, num_reduces=4)
        assert planner.choose(shape) == "simple"

    def test_many_partitions_prefers_block_coalescing(self):
        planner = self.make_planner()
        shape = JobShape(
            total_bytes=10 * 1024**2, num_maps=500, num_reduces=500
        )
        assert planner.choose(shape) != "simple"

    def test_spilling_job_prefers_push(self):
        planner = self.make_planner()
        spill = JobShape(
            total_bytes=8 * 1024**3, num_maps=64, num_reduces=64
        )
        assert planner.choose(spill) == "push"

    def test_streaming_only_feasible_when_declared(self):
        planner = self.make_planner()
        batch = JobShape(total_bytes=1024**2, num_maps=8, num_reduces=4)
        ranked = {e.variant: e for e in planner.rank(batch)}
        assert not ranked["streaming"].feasible
        stream = JobShape(
            total_bytes=1024**2, num_maps=8, num_reduces=4, streaming=True
        )
        assert {e.variant: e for e in planner.rank(stream)}[
            "streaming"
        ].feasible

    def test_rank_orders_by_cost_and_explains(self):
        planner = self.make_planner()
        shape = JobShape(total_bytes=1024**2, num_maps=8, num_reduces=4)
        ranked = planner.rank(shape)
        feasible = [e for e in ranked if e.feasible]
        costs = [e.est_seconds for e in feasible]
        assert costs == sorted(costs)
        assert set(planner.explain(shape)) == {e.variant for e in ranked}


class TestDeterminism:
    def test_identical_runs_are_bit_exact(self):
        first = run_jobs(*reversed(mixed_workload(seed=7, num_jobs=8)))
        second = run_jobs(*reversed(mixed_workload(seed=7, num_jobs=8)))
        assert first.duration == second.duration
        assert first.stats == second.stats
        assert first.job_stats == second.job_stats
        assert [j.output for j in first.jobs] == [j.output for j in second.jobs]
        assert [j.finished_at for j in first.jobs] == [
            j.finished_at for j in second.jobs
        ]

    def test_arrival_stream_is_registered_and_stable(self):
        a = named_rng(5, JOB_ARRIVAL_STREAM).integers(0, 1000, 8)
        b = named_rng(5, JOB_ARRIVAL_STREAM).integers(0, 1000, 8)
        assert list(a) == list(b)

    def test_stream_registry_guards(self):
        with pytest.raises(KeyError):
            named_rng(0, "jobs/never-registered")
        register_stream(JOB_ARRIVAL_STREAM, "jobs", "arrival")  # idempotent
        with pytest.raises(ValueError):
            register_stream(JOB_ARRIVAL_STREAM, "some", "other", "path")

    def test_workload_order_depends_on_seed(self):
        _, a = mixed_workload(seed=0, num_jobs=12)
        _, b = mixed_workload(seed=1, num_jobs=12)
        assert [s.name for s in a] != [s.name for s in b]
