"""The Dask-style backend: GIL, copies, and OOM behaviour (Fig 6)."""

import pytest

from repro.baselines.dask import DaskConfig, run_dask_sort
from repro.common.units import GB


def test_sort_completes_in_processes_mode():
    config = DaskConfig(processes=8, threads_per_process=1, total_memory_bytes=64 * GB)
    result = run_dask_sort(config, data_bytes=4 * GB, num_partitions=32)
    assert not result.oom
    assert result.seconds > 0


def test_threads_mode_gil_slows_compute():
    """Same cores, threads vs processes: GIL serialisation costs ~3x."""
    threads = DaskConfig(processes=1, threads_per_process=32)
    procs = DaskConfig(processes=32, threads_per_process=1)
    t_threads = run_dask_sort(threads, data_bytes=8 * GB, num_partitions=64)
    t_procs = run_dask_sort(procs, data_bytes=8 * GB, num_partitions=64)
    assert not t_threads.oom and not t_procs.oom
    assert t_threads.seconds > 2.0 * t_procs.seconds


def test_threads_mode_copies_nothing():
    threads = DaskConfig(processes=1, threads_per_process=16)
    result = run_dask_sort(threads, data_bytes=2 * GB, num_partitions=16)
    assert result.copied_bytes == 0


def test_processes_mode_copies_cross_worker_blocks():
    procs = DaskConfig(processes=8, threads_per_process=1)
    result = run_dask_sort(procs, data_bytes=8 * GB, num_partitions=32)
    # 7/8 of each reducer's input is remote.
    assert result.copied_bytes >= 0.7 * 8 * GB


def test_processes_mode_ooms_on_large_data():
    """The Fig 6 failure: copies push per-process heaps over the limit."""
    procs = DaskConfig(
        processes=32, threads_per_process=1, total_memory_bytes=244 * GB
    )
    small = run_dask_sort(procs, data_bytes=40 * GB, num_partitions=100)
    big = run_dask_sort(procs, data_bytes=200 * GB, num_partitions=100)
    assert not small.oom
    assert big.oom
    assert big.seconds is None


def test_config_validation():
    with pytest.raises(ValueError):
        DaskConfig(processes=0)
    with pytest.raises(ValueError):
        DaskConfig(gil_serial_fraction=1.5)
    with pytest.raises(ValueError):
        DaskConfig(total_memory_bytes=0)
