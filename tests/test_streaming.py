"""The streaming shuffle tier: sources, rounds, backpressure, load gen.

Covers the tier's contracts:

- open-loop sources are deterministic, in-order, and horizon-bounded;
- the incremental :class:`RoundDriver` is *bit-for-bit* equivalent to
  :func:`repro.shuffle.streaming_shuffle` at one in-flight round -- and
  the aggregation app, re-based on it, reproduces the exact Fig-5
  error-vs-time curve and event digest of a hand-rolled
  ``streaming_shuffle`` run (the golden parity check);
- backpressure invariants hold under *any* Poisson seed / window size /
  bound (hypothesis): in-flight windows never exceed the bound and runs
  always terminate once sources close;
- hundreds-of-tenants open-loop fleets run through admission + fair
  share with every record latency-accounted, and the obs report's
  streaming section renders exact global + per-tenant percentiles;
- batch-only runs emit zero ``stream.*`` events (the tier is unused
  unless asked for).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregation import run_online_aggregation
from repro.aggregation.app import (
    _make_map_cost,
    _make_operators,
    _streaming_reduce_cost,
)
from repro.common.errors import JobControlError
from repro.jobs import JobSpec, StreamSpec, job_runner
from repro.metrics.core import TimeSeries
from repro.obs.report import RunReport, record_run
from repro.obs.trace import derive_spans
from repro.shuffle import streaming_shuffle
from repro.shuffle.common import chunks
from repro.streaming import (
    BackpressureController,
    PoissonSource,
    RoundDriver,
    drive_rounds,
    make_sources,
    open_loop_workload,
    run_open_loop,
    run_streaming_job,
)
from repro.workloads import PageviewDataset

from tests.conftest import make_runtime


def _stream_spec(**overrides) -> StreamSpec:
    base = dict(
        rate_hz=3.0, duration_s=12.0, window_s=4.0, keys=8,
        bytes_per_record=64, max_inflight_windows=2, backpressure=True,
    )
    base.update(overrides)
    return StreamSpec(**base)


def _job_spec(name="s", seed=0, **stream_overrides) -> JobSpec:
    return JobSpec(
        name=name, tenant="t0", num_maps=2, num_reduces=2, seed=seed,
        stream=_stream_spec(**stream_overrides),
    )


class TestSources:
    def test_deterministic_and_in_order(self):
        a, b = (
            PoissonSource(
                seed=5, index=1, rate_hz=2.0, duration_s=20.0, keys=8,
                bytes_per_record=64,
            )
            for _ in range(2)
        )
        assert (a.arrival_times == b.arrival_times).all()
        assert (a.keys == b.keys).all()
        assert (np.diff(a.arrival_times) >= 0).all()

    def test_open_loop_horizon(self):
        src = PoissonSource(
            seed=1, index=0, rate_hz=5.0, duration_s=10.0, keys=4,
            bytes_per_record=32,
        )
        assert (src.arrival_times < 10.0).all()
        assert src.closed(10.0) and not src.closed(9.99)
        assert src.watermark(10.0) == 10.0

    def test_watermark_is_latest_emitted(self):
        src = PoissonSource(
            seed=2, index=0, rate_hz=1.0, duration_s=30.0, keys=4,
            bytes_per_record=32,
        )
        mid = float(src.arrival_times[3])
        assert src.watermark(mid) == mid
        assert src.watermark(mid + 1e-6) == mid
        assert src.watermark(0.0) <= src.watermark(15.0) <= src.watermark(30.0)

    def test_windows_partition_every_record(self):
        src = PoissonSource(
            seed=3, index=0, rate_hz=4.0, duration_s=17.0, keys=8,
            bytes_per_record=64,
        )
        window_s = 5.0
        total = sum(
            len(src.batch_for(w, window_s))
            for w in range(src.num_windows(window_s))
        )
        assert total == src.num_records

    def test_independent_sources(self):
        a, b = make_sources(
            seed=0, num_sources=2, rate_hz=3.0, duration_s=20.0, keys=8,
            bytes_per_record=64,
        )
        assert a.num_records > 0 and b.num_records > 0
        assert not np.array_equal(
            a.arrival_times[: min(len(a.arrival_times), len(b.arrival_times))],
            b.arrival_times[: min(len(a.arrival_times), len(b.arrival_times))],
        )


def _digest(events) -> str:
    """A full-stream digest (every event, all attrs) for parity checks."""
    lines = [
        f"{e.ts!r}|{e.kind}|{e.node}|{e.job}|{e.task}|{e.obj}|{e.cause}"
        f"|{sorted(e.attrs.items())!r}"
        for e in events
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


class TestRoundDriverParity:
    """drive_rounds at one in-flight round == streaming_shuffle, exactly."""

    @staticmethod
    def _operators():
        def map_fn(part):
            return [[v * 2 for v in part], [v * 3 for v in part]]

        def reduce_fn(state, *blocks):
            merged = list(state or [])
            for block in blocks:
                merged.extend(block)
            return sorted(merged)

        return map_fn, reduce_fn

    def test_identical_events_and_results(self):
        map_fn, reduce_fn = self._operators()
        rounds = [[[r, r + c] for c in range(3)] for r in range(4)]
        outcomes = []
        for impl in (streaming_shuffle, drive_rounds):
            rt = make_runtime(num_nodes=2)
            hook_log = []
            values = rt.run(
                lambda: rt.get(
                    impl(
                        rt, rounds, map_fn, reduce_fn, 2,
                        on_round=lambda rnd, refs: hook_log.append(
                            (rnd, len(refs), rt.now)
                        ),
                    )
                )
            )
            outcomes.append((values, hook_log, _digest(rt.bus.events)))
        assert outcomes[0] == outcomes[1]

    def test_single_reducer_unwrap(self):
        def map_fn(part):
            return [sum(part)]

        def reduce_fn(state, *blocks):
            return (state or 0) + sum(blocks)

        rt = make_runtime(num_nodes=2)
        [total] = rt.run(
            lambda: rt.get(drive_rounds(rt, [[[1, 2]], [[3, 4]]], map_fn, reduce_fn, 1))
        )
        assert total == 10

    def test_incremental_matches_known_ahead(self):
        map_fn, reduce_fn = self._operators()
        rounds = [[[r]] for r in range(3)]
        rt1 = make_runtime(num_nodes=2)
        known = rt1.run(
            lambda: rt1.get(drive_rounds(rt1, rounds, map_fn, reduce_fn, 2))
        )
        rt2 = make_runtime(num_nodes=2)

        def incremental():
            driver = RoundDriver(rt2, map_fn, reduce_fn, 2)
            for round_inputs in rounds:
                driver.submit_round(round_inputs)
            return rt2.get(driver.finish())

        assert rt2.run(incremental) == known

    def test_empty_rounds_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(ValueError):
            rt.run(lambda: drive_rounds(rt, [], lambda p: [p], lambda s, *b: b, 1))

    def test_finish_before_any_round_rejected(self):
        rt = make_runtime(num_nodes=1)
        driver = RoundDriver(rt, lambda p: [p], lambda s, *b: b, 1)
        with pytest.raises(ValueError):
            driver.finish()


class TestAggregationGoldenParity:
    """The re-based app reproduces the pre-rebase curve bit-for-bit."""

    @staticmethod
    def _dataset():
        return PageviewDataset(
            num_hours=12,
            languages=3,
            pages_per_language=50,
            block_bytes=8 * 10**6,
            views_per_hour=50_000,
            seed=11,
        )

    @staticmethod
    def _reference_run(rt, dataset, num_reduces=4, hours_per_round=4):
        """The app's pre-rebase streaming loop, verbatim, on
        ``streaming_shuffle`` -- the golden reference."""
        map_fn, _, streaming_reduce, error_of = _make_operators(
            dataset, num_reduces
        )
        error_series = TimeSeries("partial_error")
        map_cost = _make_map_cost(dataset.block_bytes)
        aggregate_task = rt.remote(lambda *states: error_of(states), compute=5e-3)
        keepalive = []

        def record_error(agg_ref):
            def on_ready(_oid, error):
                if error is None:
                    error_series.record(rt.env.now, rt.peek(agg_ref))

            rt.directory.on_ready(agg_ref.object_id, on_ready)

        def driver():
            inputs = list(range(dataset.num_hours))
            rounds = chunks(inputs, hours_per_round)

            def on_round(_rnd, state_refs):
                agg_ref = aggregate_task.remote(*state_refs)
                keepalive.append(agg_ref)
                record_error(agg_ref)

            states = streaming_shuffle(
                rt, rounds, map_fn, streaming_reduce, num_reduces,
                on_round=on_round,
                map_options={"compute": map_cost},
                reduce_options={"compute": _streaming_reduce_cost},
            )
            finals = rt.get(states)
            final_error = error_of(finals)
            error_series.record(rt.timestamp(), final_error)
            return final_error

        final_error = rt.run(driver)
        return error_series, final_error

    def test_error_curve_and_events_bit_for_bit(self):
        dataset = self._dataset()
        rt_app = make_runtime(num_nodes=2, store_mib=2048)
        result = run_online_aggregation(
            rt_app, dataset, num_reduces=4, mode="streaming",
            hours_per_round=4,
        )
        rt_ref = make_runtime(num_nodes=2, store_mib=2048)
        ref_series, ref_final = self._reference_run(rt_ref, self._dataset())
        assert result.error_series.samples == ref_series.samples
        assert result.final_error == ref_final
        assert _digest(rt_app.bus.events) == _digest(rt_ref.bus.events)


class TestBackpressure:
    def test_bound_validated(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(ValueError):
            BackpressureController(rt, max_inflight_windows=0)

    def test_overload_throttles_and_bounds(self):
        spec = _job_spec(
            rate_hz=4.0, duration_s=16.0, window_s=2.0,
            max_inflight_windows=2,
        )
        rt = make_runtime(num_nodes=2)
        result = rt.run(
            run_streaming_job, rt, spec, job_id="bp",
            reduce_options={"compute": 4.0},
        )
        assert result.backpressure_stalls > 0
        assert result.peak_inflight_windows <= 2
        events = [e for e in rt.bus.events if e.kind == "stream.backpressure"]
        assert events and all(
            e.attrs["reason"] in ("inflight_windows", "allocation_backlog")
            for e in events
        )

    def test_disabled_grows_past_bound(self):
        spec = _job_spec(
            rate_hz=4.0, duration_s=16.0, window_s=2.0,
            max_inflight_windows=1, backpressure=False,
        )
        rt = make_runtime(num_nodes=2)
        result = rt.run(
            run_streaming_job, rt, spec, job_id="nobp",
            reduce_options={"compute": 4.0},
        )
        assert result.backpressure_stalls == 0
        assert result.peak_inflight_windows > 1

    def test_backpressure_caps_peak_store_bytes(self):
        """The acceptance contrast: same overload, bounded vs unbounded."""
        peaks = {}
        for on in (True, False):
            spec = JobSpec(
                name="contrast", tenant="t0", num_maps=4, num_reduces=2,
                seed=7,
                stream=StreamSpec(
                    rate_hz=40.0, duration_s=24.0, window_s=2.0,
                    bytes_per_record=65536, max_inflight_windows=1,
                    backpressure=on,
                ),
            )
            rt = make_runtime(num_nodes=2)
            rt.run(
                run_streaming_job, rt, spec, job_id="c",
                reduce_options={"compute": 6.0},
            )
            peaks[on] = rt.stats()["store_peak_bytes"]
        assert peaks[True] < peaks[False]

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        window_s=st.sampled_from([1.0, 2.5, 4.0, 7.0]),
        max_inflight=st.integers(min_value=1, max_value=3),
        reduce_cost=st.sampled_from([0.0, 1.5, 5.0]),
    )
    def test_invariants_any_seed_and_window(
        self, seed, window_s, max_inflight, reduce_cost
    ):
        """Under any Poisson seed and window size: in-flight windows
        never exceed the bound, and the run terminates once sources
        close -- with every emitted record accounted for."""
        spec = JobSpec(
            name="hyp", tenant="t0", num_maps=1, num_reduces=2, seed=seed,
            stream=StreamSpec(
                rate_hz=3.0, duration_s=10.0, window_s=window_s,
                max_inflight_windows=max_inflight,
            ),
        )
        rt = make_runtime(num_nodes=2)
        result = rt.run(
            run_streaming_job, rt, spec, job_id="hyp",
            reduce_options={"compute": reduce_cost},
        )
        # Termination: rt.run returned (a hang would time the suite out),
        # sources are closed, and every record was latency-accounted.
        assert result.peak_inflight_windows <= max_inflight
        assert result.watermark == spec.stream.duration_s
        expected = sum(
            src.num_records
            for src in make_sources(
                seed=seed, num_sources=1, rate_hz=3.0, duration_s=10.0,
                keys=spec.stream.keys,
                bytes_per_record=spec.stream.bytes_per_record,
            )
        )
        assert result.records == expected
        hist = rt.metrics.histogram("stream.record_latency_s", job="hyp")
        assert hist.count == expected


class TestStreamingEvents:
    def test_window_spans_pair(self):
        spec = _job_spec()
        rt = make_runtime(num_nodes=2)
        rt.run(run_streaming_job, rt, spec, job_id="ev")
        spans = derive_spans(rt.bus.events)
        window_spans = [s for s in spans if s.cat == "stream.window"]
        agg_spans = [s for s in spans if s.cat == "stream.agg"]
        assert window_spans and agg_spans
        assert all(s.duration >= 0 for s in window_spans + agg_spans)
        closes = [e for e in rt.bus.events if e.kind == "stream.window.close"]
        assert len(window_spans) == len(closes)

    def test_causal_chain_close_to_agg_end(self):
        spec = _job_spec()
        rt = make_runtime(num_nodes=2)
        rt.run(run_streaming_job, rt, spec, job_id="ch")
        ends = [e for e in rt.bus.events if e.kind == "stream.agg.end"]
        assert ends
        chain = rt.bus.causal_chain(ends[0])
        kinds = [e.kind for e in chain]
        assert kinds[:4] == [
            "stream.agg.end", "stream.agg.begin", "stream.window.close",
            "stream.window.open",
        ]

    def test_batch_runs_emit_no_stream_events(self):
        from repro.shuffle import simple_shuffle

        rt = make_runtime(num_nodes=2)
        rt.run(
            lambda: rt.get(
                simple_shuffle(
                    rt, [[1, 2], [3, 4]], lambda p: [p, p], lambda *b: sum(
                        (list(x) for x in b), []
                    ), 2,
                )
            )
        )
        assert not rt.bus.events_of("stream")


class TestOpenLoopFleet:
    def test_fleet_runs_under_admission_and_fair_share(self):
        tenants, specs = open_loop_workload(
            seed=1, num_tenants=8, duration_s=16.0, window_s=4.0
        )
        report = run_open_loop(specs, tenants, num_nodes=2)
        assert report.all_done
        assert report.records > 0
        assert len(report.tenant_latency) == len(tenants)
        global_count = int(report.latency["count"])
        assert global_count == report.records
        assert global_count == sum(
            int(s["count"]) for s in report.tenant_latency.values()
        )
        assert (
            report.latency["p50"]
            <= report.latency["p99"]
            <= report.latency["p999"]
            <= report.latency["max"]
        )

    def test_workload_deterministic(self):
        a = open_loop_workload(seed=3, num_tenants=5)
        b = open_loop_workload(seed=3, num_tenants=5)
        assert [s.stream.rate_hz for s in a[1]] == [
            s.stream.rate_hz for s in b[1]
        ]
        c = open_loop_workload(seed=4, num_tenants=5)
        assert [s.stream.rate_hz for s in a[1]] != [
            s.stream.rate_hz for s in c[1]
        ]

    def test_streaming_spec_dispatches_via_runner(self):
        assert job_runner("streaming") is not None
        with pytest.raises(JobControlError):
            job_runner("no-such-mode")

    def test_report_streaming_section(self, tmp_path):
        tenants, specs = open_loop_workload(
            seed=2, num_tenants=3, duration_s=12.0, window_s=4.0
        )
        from repro.streaming.loadgen import streaming_node_spec
        from repro.futures import Runtime

        rt = Runtime.create(streaming_node_spec(), 2)
        run_open_loop(specs, tenants, runtime=rt)
        path = tmp_path / "run.jsonl"
        record_run(rt, str(path))
        report = RunReport.load(str(path))
        summary = report.streaming_summary()
        assert summary["sources"] == len(specs)
        assert summary["records"] > 0
        table = report.streaming_latency_table()
        scopes = [row["scope"] for row in table.rows]
        assert "<global>" in scopes
        for tenant in tenants:
            assert tenant.name in scopes
        rendered = report.render()
        assert "Streaming record latency" in rendered
        assert "streaming:" in rendered

    def test_batch_report_has_no_streaming_section(self):
        rt = make_runtime(num_nodes=1)
        rt.run(lambda: rt.get(rt.remote(lambda: 1).remote()))
        report = RunReport(rt.bus.events)
        assert report.streaming_summary() == {}


class TestSpecValidation:
    def test_stream_spec_bounds(self):
        with pytest.raises(ValueError):
            StreamSpec(rate_hz=0)
        with pytest.raises(ValueError):
            StreamSpec(window_s=-1)
        with pytest.raises(ValueError):
            StreamSpec(max_inflight_windows=0)

    def test_streaming_footprint_estimate_scales_with_bound(self):
        small = _job_spec(max_inflight_windows=1)
        large = _job_spec(max_inflight_windows=8)
        assert large.estimated_store_bytes > small.estimated_store_bytes
