"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import Environment, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value_via_completion_event():
    env = Environment()

    def child():
        yield env.timeout(3.0)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append((env.now, value))

    def opener():
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert log == [(4.0, "open")]


def test_waiting_on_already_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed(7)
    env.run(until=1.0)
    assert gate.processed
    seen = []

    def proc():
        value = yield gate
        seen.append((env.now, value))

    env.process(proc())
    env.run()
    assert seen == [(1.0, 7)]


def test_event_fail_raises_in_process():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc())
    gate.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_uncaught_exception_fails_process_event():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("dead")

    done = env.process(proc())
    env.run()
    assert done.triggered
    assert isinstance(done.exception, RuntimeError)


def test_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(RuntimeError):
        gate.succeed(2)


def test_all_of_collects_values_in_order():
    env = Environment()
    results = []

    def proc():
        t_slow = env.timeout(5.0, value="slow")
        t_fast = env.timeout(1.0, value="fast")
        values = yield env.all_of([t_slow, t_fast])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(5.0, ["slow", "fast"])]


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(0.0, [])]


def test_any_of_returns_first_value():
    env = Environment()
    results = []

    def proc():
        value = yield env.any_of(
            [env.timeout(5.0, value="slow"), env.timeout(1.0, value="fast")]
        )
        results.append((env.now, value))

    env.process(proc())
    env.run()
    assert results == [(1.0, "fast")]


def test_all_of_fails_fast_on_child_failure():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([gate, env.timeout(100.0)])
        except KeyError as exc:
            caught.append((env.now, type(exc).__name__))

    env.process(proc())
    env.call_later(2.0, lambda: gate.fail(KeyError("lost")))
    env.run()
    assert caught == [(2.0, "KeyError")]


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    proc = env.process(victim())
    env.call_later(3.0, lambda: proc.interrupt("node-death"))
    env.run()
    assert log == [(3.0, "node-death")]


def test_interrupted_wait_ignores_stale_wakeup():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(5.0)
            log.append("timeout-fired")
        except Interrupt:
            yield env.timeout(10.0)
            log.append(("resumed", env.now))

    proc = env.process(victim())
    env.call_later(1.0, lambda: proc.interrupt())
    env.run()
    # The original 5s timeout must not wake the process a second time.
    assert log == [("resumed", 11.0)]


def test_interrupt_after_completion_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1.0)
        return "done"

    proc = env.process(quick())
    env.run()
    proc.interrupt()
    env.run()
    assert proc.value == "done"


def test_run_until_limit_advances_time_exactly():
    env = Environment()

    def noop():
        yield env.timeout(1.0)

    env.process(noop())
    env.run(until=9.0)
    assert env.now == 9.0


def test_run_until_event_detects_deadlock():
    env = Environment()
    gate = env.event()  # never triggered
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run_until_event(gate)


def test_call_later_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.call_later(-1.0, lambda: None)


def test_same_time_events_run_in_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    env.run()
    assert isinstance(proc.exception, TypeError)


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]
