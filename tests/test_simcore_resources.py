"""Unit tests for counted and bandwidth resources."""

import pytest

from repro.simcore import BandwidthResource, Environment, Resource


def test_resource_grants_up_to_capacity_immediately():
    env = Environment()
    res = Resource(env, capacity=2)
    r1, r2 = res.request(), res.request()
    r3 = res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_wakes_fifo_waiter():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("start", tag, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user("a", 2.0))
    env.process(user("b", 1.0))
    env.process(user("c", 1.0))
    env.run()
    assert order == [
        ("start", "a", 0.0),
        ("start", "b", 2.0),
        ("start", "c", 3.0),
    ]


def test_resource_cancel_of_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    queued.cancel()
    res.release(held)
    env.run()
    assert res.in_use == 0
    assert not queued.triggered


def test_resource_cancel_of_granted_request_frees_slot():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    held.cancel()
    env.run()
    assert queued.triggered
    assert res.in_use == 1


def test_release_of_unheld_request_rejected():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    waiting = res.request()
    with pytest.raises(ValueError):
        res.release(waiting)


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_bandwidth_service_time():
    env = Environment()
    disk = BandwidthResource(env, bandwidth_bytes_per_sec=100e6, per_op_latency=0.01)
    done_at = []

    def proc():
        yield disk.transfer(200_000_000)  # 2s at 100 MB/s + 10ms latency
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [pytest.approx(2.01)]


def test_bandwidth_fifo_contention_serialises():
    env = Environment()
    disk = BandwidthResource(env, bandwidth_bytes_per_sec=100e6)
    finish = {}

    def proc(tag):
        yield disk.transfer(100_000_000)  # 1s each
        finish[tag] = env.now

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert finish["a"] == pytest.approx(1.0)
    assert finish["b"] == pytest.approx(2.0)


def test_bandwidth_per_op_latency_dominates_small_ops():
    """Many small ops on a seeky disk cost ~latency each (the IOPS wall)."""
    env = Environment()
    disk = BandwidthResource(env, bandwidth_bytes_per_sec=1e9, per_op_latency=0.005)
    end = []

    def proc():
        for _ in range(100):
            yield disk.transfer(1000)
        end.append(env.now)

    env.process(proc())
    env.run()
    assert end[0] == pytest.approx(100 * (0.005 + 1000 / 1e9))


def test_bandwidth_zero_byte_transfer_costs_latency_only():
    env = Environment()
    link = BandwidthResource(env, bandwidth_bytes_per_sec=1e9, per_op_latency=0.001)
    end = []

    def proc():
        yield link.transfer(0)
        end.append(env.now)

    env.process(proc())
    env.run()
    assert end == [pytest.approx(0.001)]


def test_bandwidth_negative_size_rejected():
    env = Environment()
    link = BandwidthResource(env, bandwidth_bytes_per_sec=1e9)
    with pytest.raises(ValueError):
        link.transfer(-1)


def test_bandwidth_stats_accumulate():
    env = Environment()
    disk = BandwidthResource(env, bandwidth_bytes_per_sec=1e6, per_op_latency=0.0)

    def proc():
        yield disk.transfer(500_000)
        yield disk.transfer(500_000)

    env.process(proc())
    env.run()
    assert disk.bytes_served == 1_000_000
    assert disk.ops_served == 2
    assert disk.busy_seconds == pytest.approx(1.0)


def test_bandwidth_failure_fails_queued_and_future_transfers():
    env = Environment()
    disk = BandwidthResource(env, bandwidth_bytes_per_sec=1e6)
    errors = []

    def proc():
        try:
            yield disk.transfer(10_000_000)
        except IOError as exc:
            errors.append((env.now, str(exc)))

    env.process(proc())
    env.call_later(1.0, lambda: disk.set_failed(IOError("node down")))
    env.run()
    # The in-flight transfer completes (it was already committed to the
    # device timeline); later attempts fail immediately.
    failed = disk.transfer(1)
    assert failed.triggered and not failed.ok
    disk.set_failed(None)
    revived = disk.transfer(1)
    env.run()
    assert revived.ok


def test_bandwidth_validation():
    env = Environment()
    with pytest.raises(ValueError):
        BandwidthResource(env, bandwidth_bytes_per_sec=0)
    with pytest.raises(ValueError):
        BandwidthResource(env, bandwidth_bytes_per_sec=1, per_op_latency=-1)
