"""LoC counting and shuffle-library helper utilities."""

from pathlib import Path

import pytest

from repro.shuffle.common import assign_reducers, chunks, unwrap_single_return
from repro.tools.loc import (
    PAPER_MONOLITHIC_LOC,
    count_loc,
    shuffle_library_loc,
)


class TestLoc:
    def test_counts_exclude_comments_blank_and_docstrings(self, tmp_path):
        source = '\n'.join(
            [
                '"""Module docstring.',
                'More of it."""',
                "",
                "# a comment",
                "def f(x):",
                '    """Docstring."""',
                "    return x  # trailing comment",
                "",
            ]
        )
        path = tmp_path / "sample.py"
        path.write_text(source)
        assert count_loc(path) == 2  # def line + return line

    def test_multiline_statement_counts_each_line(self, tmp_path):
        path = tmp_path / "multi.py"
        path.write_text("x = [\n    1,\n    2,\n]\n")
        assert count_loc(path) == 4

    def test_shuffle_library_is_an_order_of_magnitude_smaller(self):
        ours = shuffle_library_loc()
        assert set(ours) == set(PAPER_MONOLITHIC_LOC)
        for algorithm, loc in ours.items():
            assert 30 <= loc <= PAPER_MONOLITHIC_LOC[algorithm] / 10


class TestHelpers:
    def test_chunks_covers_everything_in_order(self):
        assert chunks([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunks([], 3) == []

    def test_chunks_validates_size(self):
        with pytest.raises(ValueError):
            chunks([1], 0)

    def test_assign_reducers_round_robin(self):
        assignment = assign_reducers(7, ["n0", "n1", "n2"])
        assert assignment == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(r for slots in assignment for r in slots) == list(range(7))

    def test_unwrap_single_return_passthrough_when_multi(self):
        fn = lambda x: [x, x]  # noqa: E731
        assert unwrap_single_return(fn, 2) is fn

    def test_unwrap_single_return_unwraps(self):
        fn = unwrap_single_return(lambda x: [x * 2], 1)
        assert fn(4) == 8

    def test_unwrap_single_return_validates(self):
        bad = unwrap_single_return(lambda x: [1, 2], 1)
        with pytest.raises(ValueError):
            bad(0)
