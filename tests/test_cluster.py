"""Unit tests for the cluster hardware model."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    D3_2XLARGE,
    DiskSpec,
    FailureInjector,
    FailurePlan,
    I3_2XLARGE,
    NicSpec,
    NodeSpec,
)
from repro.common.units import GIB, MIB
from repro.simcore import Environment


def small_spec(cores=4):
    return NodeSpec(
        name="test-node",
        cores=cores,
        memory_bytes=8 * GIB,
        object_store_bytes=2 * GIB,
        disk=DiskSpec(bandwidth_bytes_per_sec=100 * MIB, seek_latency_s=5e-3),
        nic=NicSpec(bandwidth_bytes_per_sec=125 * MIB),
    )


class TestSpecs:
    def test_presets_are_valid(self):
        for preset in (D3_2XLARGE, I3_2XLARGE):
            assert preset.cores == 8
            assert preset.object_store_bytes < preset.memory_bytes

    def test_hdd_vs_ssd_seek_gap(self):
        """The HDD preset must punish random I/O far more than the SSD."""
        hdd, ssd = D3_2XLARGE.disk, I3_2XLARGE.disk
        assert hdd.effective_seek_latency_s > 100 * ssd.effective_seek_latency_s

    def test_spindles_divide_seek(self):
        disk = DiskSpec(bandwidth_bytes_per_sec=1e9, seek_latency_s=8e-3, spindles=4)
        assert disk.effective_seek_latency_s == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(bandwidth_bytes_per_sec=0, seek_latency_s=0)
        with pytest.raises(ValueError):
            NicSpec(bandwidth_bytes_per_sec=-1)
        with pytest.raises(ValueError):
            NodeSpec(
                name="bad",
                cores=1,
                memory_bytes=GIB,
                object_store_bytes=2 * GIB,  # bigger than memory
                disk=DiskSpec(bandwidth_bytes_per_sec=1, seek_latency_s=0),
                nic=NicSpec(bandwidth_bytes_per_sec=1),
            )

    def test_with_object_store(self):
        shrunk = D3_2XLARGE.with_object_store(1 * GIB)
        assert shrunk.object_store_bytes == GIB
        assert shrunk.disk == D3_2XLARGE.disk

    def test_cluster_spec_aggregates(self):
        spec = ClusterSpec.homogeneous(small_spec(), 10)
        assert spec.num_nodes == 10
        assert spec.total_cores == 40
        assert spec.aggregate_disk_bandwidth == pytest.approx(10 * 100 * MIB)

    def test_cluster_spec_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(small_spec(), 0)


class TestNodeIO:
    def test_sequential_write_skips_seek(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 1)
        node = cluster.nodes[0]
        times = {}

        def proc():
            yield node.disk_write(100 * MIB, sequential=True)
            times["seq"] = env.now
            start = env.now
            yield node.disk_read(100 * MIB, sequential=False)
            times["rand"] = env.now - start

        env.process(proc())
        env.run()
        assert times["seq"] == pytest.approx(1.0)
        assert times["rand"] == pytest.approx(1.0 + 5e-3)

    def test_cross_node_send_charges_both_nics(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 2)
        a, b = cluster.node_ids
        done_at = []

        def proc():
            yield cluster.send(a, b, 125 * MIB)  # 1s at 125 MiB/s
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at[0] == pytest.approx(1.0, rel=0.01)
        assert cluster.node(a).nic_out.bytes_served == 125 * MIB
        assert cluster.node(b).nic_in.bytes_served == 125 * MIB
        assert cluster.network_bytes_sent == 125 * MIB

    def test_same_node_send_is_free(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 1)
        node_id = cluster.node_ids[0]
        done_at = []

        def proc():
            yield cluster.send(node_id, node_id, 10 * GIB)
            done_at.append(env.now)

        env.process(proc())
        env.run()
        assert done_at == [0.0]
        assert cluster.network_bytes_sent == 0

    def test_send_to_dead_node_fails(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 2)
        a, b = cluster.node_ids
        cluster.node(b).fail()
        errors = []

        def proc():
            try:
                yield cluster.send(a, b, 1000)
            except Exception as exc:  # noqa: BLE001
                errors.append(type(exc).__name__)

        env.process(proc())
        env.run()
        assert errors == ["NodeFailure"]


class TestFailureLifecycle:
    def test_fail_notifies_listeners_and_restart_bumps_incarnation(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 1)
        node = cluster.nodes[0]
        events = []
        node.on_death(lambda n: events.append(("dead", n.incarnation)))
        node.on_restart(lambda n: events.append(("up", n.incarnation)))
        node.fail()
        node.fail()  # idempotent
        node.restart()
        node.restart()  # idempotent
        assert events == [("dead", 0), ("up", 1)]

    def test_injector_kills_and_restarts_on_schedule(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 4)
        injector = FailureInjector(
            cluster, [FailurePlan(at_time=30.0, downtime=5.0, node_index=2)]
        )
        victim = cluster.nodes[2]
        env.run(until=29.9)
        assert victim.alive
        env.run(until=30.1)
        assert not victim.alive
        env.run(until=35.1)
        assert victim.alive
        assert injector.injected == [(30.0, victim.node_id)]

    def test_injector_random_victim_never_node_zero(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 5)
        for seed in range(20):
            plan = FailurePlan(at_time=1.0, seed=seed)
            injector = FailureInjector(cluster.__class__(env, cluster.spec), [plan])
            index = injector._choose_victim_index(plan)
            assert 1 <= index < 5

    def test_injector_rejects_bad_index(self):
        env = Environment()
        cluster = Cluster.homogeneous(env, small_spec(), 2)
        with pytest.raises(ValueError):
            FailureInjector(cluster, [FailurePlan(at_time=1.0, node_index=7)])

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FailurePlan(at_time=-1.0)
        with pytest.raises(ValueError):
            FailurePlan(at_time=0.0, downtime=-1.0)
