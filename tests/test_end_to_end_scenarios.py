"""Cross-package end-to-end scenarios: the workflows a real adopter runs."""

import numpy as np
import pytest

from repro.common.rng import seeded_rng
from repro.common.units import MB
from repro.dataframe import DistributedFrame
from repro.futures import RuntimeConfig
from repro.graphs import execute_graph
from repro.metrics import phase_summary, task_spans
from repro.shuffle import simple_shuffle
from repro.sort import SortJobConfig, cloudsort_cost, run_sort

from tests.conftest import make_runtime


class TestSortThenReport:
    def test_sort_produces_cost_report_and_timeline(self):
        """The CloudSort workflow: run, cost out, inspect the timeline."""
        rt = make_runtime(num_nodes=4)
        result = run_sort(
            rt,
            SortJobConfig(
                variant="push*", num_partitions=8, partition_bytes=8 * MB,
                virtual=True,
            ),
        )
        assert result.validated
        cost = cloudsort_cost(
            "d3.2xlarge", 4, result.sort_seconds, result.total_bytes
        )
        assert cost.total_dollars > 0
        summary = phase_summary(rt)
        assert {"gen_virtual", "reduce"} <= set(summary.column("phase"))
        # The timeline's spans cover the job duration.
        spans = task_spans(rt)
        assert max(s["end"] for s in spans) <= rt.now + 1e-9


class TestEtlPipeline:
    def test_frame_etl_feeds_custom_shuffle(self):
        """DataFrame preprocessing feeding a hand-written aggregation
        shuffle on the same runtime -- interop through plain refs."""
        rt = make_runtime(num_nodes=3)
        rng = seeded_rng(5, "etl")
        data = {
            "user": rng.integers(0, 40, size=2000),
            "spend": rng.gamma(2.0, 10.0, size=2000),
        }

        def driver():
            frame = DistributedFrame.from_arrays(rt, data, 6)
            big = frame.filter("spend", lambda s: s > 5.0)
            totals = big.groupby_agg("user", {"spend": "sum"})
            blocks = rt.get(totals.partitions)

            # Hand off the aggregated blocks to a custom top-k shuffle.
            def map_fn(block):
                order = np.argsort(block["spend_sum"])[::-1]
                top = block.take(order[:5])
                return [top, block]

            def reduce_fn(*blocks_in):
                from repro.dataframe import FrameBlock

                merged = FrameBlock.concat(list(blocks_in))
                return float(merged["spend_sum"].max())

            refs = simple_shuffle(rt, blocks, map_fn, reduce_fn, 2)
            return max(rt.get(refs))

        top_spend = rt.run(driver)
        mask = data["spend"] > 5.0
        expected = max(
            data["spend"][mask & (data["user"] == u)].sum()
            for u in np.unique(data["user"][mask])
        )
        assert top_spend == pytest.approx(expected)


class TestGraphDrivenApplication:
    def test_graph_wrapping_frame_blocks(self):
        rt = make_runtime(num_nodes=2)
        rng = seeded_rng(9, "g")
        arrays = [rng.normal(size=200) for _ in range(4)]
        graph = {}
        for i, arr in enumerate(arrays):
            graph[f"in{i}"] = arr
            graph[f"norm{i}"] = (lambda a: (a - a.mean()) / a.std(), f"in{i}")
            graph[f"score{i}"] = (lambda a: float(np.abs(a).max()), f"norm{i}")
        graph["worst"] = (
            lambda *scores: max(scores),
            *[f"score{i}" for i in range(4)],
        )
        worst = rt.run(lambda: execute_graph(rt, graph, "worst"))
        expected = max(
            float(np.abs((a - a.mean()) / a.std()).max()) for a in arrays
        )
        assert worst == pytest.approx(expected)


class TestRecoveryUnderLoad:
    def test_failure_during_mixed_workload(self):
        """A node dies while a sort and a DataFrame job share the
        cluster; both finish correctly."""
        config = RuntimeConfig(failure_detection_s=2.0)
        rt = make_runtime(num_nodes=4, config=config)
        rng = seeded_rng(3, "mix")
        data = {"k": rng.integers(0, 10, size=800), "v": rng.normal(size=800)}

        def driver():
            frame = DistributedFrame.from_arrays(rt, data, 8)
            grouped = frame.groupby_agg("k", {"v": "sum"})
            rt.cluster.node(rt.cluster.node_ids[2]).fail()
            out = grouped.collect().sort_by("k")
            return out

        out = rt.run(driver)
        for i, key in enumerate(out["k"]):
            expected = data["v"][data["k"] == key].sum()
            assert out["v_sum"][i] == pytest.approx(expected)
        # And the cluster still sorts afterwards (node restarts not needed).
        result = run_sort(
            rt,
            SortJobConfig(
                variant="simple", num_partitions=4, partition_bytes=2 * MB,
                virtual=True,
            ),
        )
        assert result.validated
