"""Unit tests for units, ids, and seeded randomness."""

import pytest

from repro.common import (
    GB,
    GIB,
    IdGenerator,
    MB,
    NodeId,
    ObjectId,
    TaskId,
    derive_seed,
    format_bytes,
    format_duration,
    parse_bytes,
    seeded_rng,
)


class TestUnits:
    def test_parse_decimal(self):
        assert parse_bytes("2GB") == 2 * GB
        assert parse_bytes("1.5 MB") == 1_500_000

    def test_parse_binary(self):
        assert parse_bytes("1GiB") == GIB
        assert parse_bytes("512 KiB") == 512 * 1024

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bytes("twelve")
        with pytest.raises(ValueError):
            parse_bytes("5 parsecs")

    def test_format_bytes_round_trip_scale(self):
        assert format_bytes(1_500_000) == "1.50MB"
        assert format_bytes(2 * GB) == "2.00GB"
        assert format_bytes(999) == "999B"

    def test_format_duration(self):
        assert format_duration(0.0005) == "500.0us"
        assert format_duration(0.5) == "500.0ms"
        assert format_duration(42.0) == "42.0s"
        assert format_duration(93.5) == "1m33.5s"
        assert format_duration(3723.0) == "1h2m3s"

    def test_format_duration_negative(self):
        assert format_duration(-5.0) == "-5.0s"


class TestIds:
    def test_generator_is_monotonic(self):
        gen = IdGenerator()
        assert gen.next_task_id() == TaskId(0)
        assert gen.next_task_id() == TaskId(1)
        assert gen.next_object_id() == ObjectId(0)
        assert gen.next_node_id() == NodeId(0)

    def test_two_generators_independent(self):
        a, b = IdGenerator(), IdGenerator()
        a.next_task_id()
        assert b.next_task_id() == TaskId(0)

    def test_str_rendering(self):
        assert str(TaskId(42)) == "T00042"
        assert str(NodeId(3)) == "N003"
        assert str(ObjectId(317)) == "O00317"

    def test_ordering_and_hashing(self):
        assert TaskId(1) < TaskId(2)
        assert len({ObjectId(5), ObjectId(5)}) == 1


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, "map", 3) == derive_seed(7, "map", 3)

    def test_derive_seed_distinguishes_paths(self):
        seeds = {
            derive_seed(7, "map", 3),
            derive_seed(7, "map", 4),
            derive_seed(7, "reduce", 3),
            derive_seed(8, "map", 3),
        }
        assert len(seeds) == 4

    def test_seeded_rng_reproducible(self):
        a = seeded_rng(1, "x").random(4)
        b = seeded_rng(1, "x").random(4)
        assert (a == b).all()
