"""The self-profiling plane: wall-clock attribution for the simulator
itself.

Four contracts pin the tier:

- **Full coverage** -- the category breakdown plus the untracked
  residue sums to total wall time (property-tested over random scope
  trees with a deterministic clock, and asserted on real runs);
- **Zero cost when off** -- a profiled run produces the *bit-identical*
  behaviour-defining event stream (the golden sort digest from
  ``test_policy_golden``), and detaching leaves no instance shadow
  behind;
- **Bounded cost when on** -- <5% wall-time overhead on a realistic
  byte-moving sort (the budget scales with per-event simulation cost:
  instrumentation adds a near-constant handful of microseconds per
  event, so virtual microbenchmarks that do almost no Python work per
  event will show more -- ``docs/profiling.md`` spells this out);
- **Non-gating trajectory** -- wall-clock numbers ride along in bench
  diffs as a perf-trajectory track but never flip the regression gate.
"""

import json
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MB
from repro.obs.events import EventBus
from repro.obs.perf.diff import (
    TRAJECTORY_FIELDS,
    compare_benches,
    trajectory_rows,
)
from repro.obs.profile import (
    CProfileCapture,
    SelfProfiler,
    folded_from_cprofile,
    folded_from_profiler,
    render_flamegraph_svg,
    write_flamegraph,
)
from repro.obs.profile.core import _dispatch_category
from repro.obs.profile.flame import folded_lines
from repro.obs.report import RunReport, record_run
from repro.sort import SortJobConfig, run_sort

from tests.conftest import make_runtime
from tests.test_policy_golden import GOLDEN_SORT_DIGEST, digest_events


class FakeClock:
    """A deterministic clock: every read advances by a fixed tick, so
    wall-time identities become exact arithmetic."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


def _profiled_sort(**sort_kwargs):
    """Run the golden fig4c-style sort with a profiler attached."""
    config = dict(
        variant="push*",
        num_partitions=12,
        partition_bytes=30 * MB,
        virtual=True,
    )
    config.update(sort_kwargs)
    rt = make_runtime(num_nodes=3, store_mib=256)
    prof = SelfProfiler()
    prof.attach(rt)
    result = run_sort(rt, SortJobConfig(**config))
    prof.finish()
    return rt, prof, result


# -- full coverage: sum(categories) + untracked == total -------------------


@st.composite
def scope_programs(draw):
    """Random well-nested scope programs over a small category alphabet:
    a sequence of enter/exit ops that never underflows and fully closes."""
    categories = ("engine.pop", "engine.dispatch.task", "bus.publish",
                  "metrics.charge", "driver.exec")
    ops = []
    depth = 0
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        if depth > 0 and draw(st.booleans()):
            ops.append(None)  # exit
            depth -= 1
        else:
            ops.append(draw(st.sampled_from(categories)))
            depth += 1
    ops.extend([None] * depth)
    return ops


@settings(max_examples=60, deadline=None)
@given(program=scope_programs())
def test_breakdown_sums_to_total_over_random_scope_trees(program):
    """The exclusive-accounting identity holds for *every* well-nested
    scope sequence, exactly, under a deterministic clock."""
    clock = FakeClock()
    prof = SelfProfiler(clock=clock)
    prof.start()
    for op in program:
        if op is None:
            prof._exit()
        else:
            prof._enter(op)
    prof.finish()
    breakdown = prof.breakdown()
    assert sum(breakdown.values()) == pytest.approx(
        prof.total_wall_s, rel=1e-12
    )
    assert prof.coverage_error() < 1e-9
    # The folded stacks are the same exclusive seconds, re-keyed by path.
    assert sum(prof.folded.values()) == pytest.approx(
        prof.tracked_s(), rel=1e-12
    )
    assert all(secs >= 0 for secs in breakdown.values())


def test_breakdown_sums_to_total_on_a_real_run():
    """The acceptance criterion, on a live workload: breakdown sums to
    total wall time within 1%."""
    _rt, prof, result = _profiled_sort()
    assert result.validated
    breakdown = prof.breakdown()
    assert prof.total_wall_s > 0
    assert sum(breakdown.values()) == pytest.approx(
        prof.total_wall_s, rel=0.01
    )
    assert prof.coverage_error() < 0.01
    # Engine categories dominate a headless run of the engine loop.
    assert any(c.startswith("engine.dispatch.") for c in breakdown)
    assert breakdown["engine.pop"] > 0


def test_scope_nesting_is_exclusive():
    """A child's seconds subtract out of its parent: with a fixed-tick
    clock the arithmetic is exact and hand-checkable."""
    clock = FakeClock(tick=1.0)
    prof = SelfProfiler(clock=clock)
    with prof.scope("outer"):      # start()+enter read 2 ticks
        with prof.scope("inner"):  # enter+exit read 2 ticks
            pass
    prof.finish()
    # inner: exit-enter = 1 tick of elapsed, all exclusive.
    assert prof.seconds["inner"] == pytest.approx(1.0)
    # outer elapsed spans 3 ticks, minus inner's full 1-tick interval...
    # but child-time rolls up the *elapsed* inner interval (1 tick), so
    # outer keeps 3 - 1 = 2 exclusive ticks.
    assert prof.seconds["outer"] == pytest.approx(2.0)
    assert prof.folded[("outer", "inner")] == pytest.approx(1.0)
    assert prof.folded[("outer",)] == pytest.approx(2.0)


# -- zero cost when off ----------------------------------------------------


def test_profiled_run_reproduces_the_golden_sort_digest():
    """Profiling must change *no* simulated behaviour: the profiled
    golden sort reproduces the pre-profiler digest bit-for-bit."""
    rt, _prof, result = _profiled_sort()
    assert result.validated
    assert digest_events(rt.bus.events) == GOLDEN_SORT_DIGEST


def test_detach_restores_pristine_methods():
    rt = make_runtime(num_nodes=2)
    prof = SelfProfiler()
    prof.attach(rt)
    # Instance shadows present while attached...
    assert "step" in vars(rt.env)
    assert "emit" in vars(rt.bus)
    assert "charge_task" in vars(rt)
    prof.detach()
    # ...and gone afterwards: the class methods are pristine again.
    assert "step" not in vars(rt.env)
    assert "_schedule" not in vars(rt.env)
    assert "_schedule_callback" not in vars(rt.env)
    assert "emit" not in vars(rt.bus)
    assert "charge_task" not in vars(rt)
    assert "charge_object" not in vars(rt)
    assert "counter" not in vars(rt.metrics)
    prof.detach()  # idempotent


def test_attach_refuses_stacking_and_reuse():
    rt = make_runtime(num_nodes=2)
    prof = SelfProfiler()
    prof.attach(rt)
    with pytest.raises(RuntimeError, match="already attached"):
        prof.attach(rt)
    second = SelfProfiler()
    with pytest.raises(RuntimeError, match="refusing to stack"):
        second.attach(rt)
    prof.detach()
    prof.finish()
    with pytest.raises(RuntimeError, match="already finished"):
        prof.attach(rt)


def test_attached_context_manager_detaches_and_finishes():
    rt = make_runtime(num_nodes=2)
    with SelfProfiler.attached(rt) as prof:
        assert "step" in vars(rt.env)
        assert rt.self_profiler is prof
    assert "step" not in vars(rt.env)
    assert prof.total_wall_s > 0
    assert prof._finished_at is not None


def test_one_profiler_accumulates_across_runtimes():
    """A figure benchmark builds one runtime per variant; the harness
    hops a single profiler across them and the totals accumulate."""
    prof = SelfProfiler()
    for _ in range(2):
        rt = make_runtime(num_nodes=2)
        prof.attach(rt)
        run_sort(rt, SortJobConfig(
            variant="push", num_partitions=4, partition_bytes=MB,
            virtual=True,
        ))
        prof.detach()
    prof.finish()
    assert prof.counts["runtimes_attached"] == 2
    assert prof.counts["events_processed"] > 0
    assert prof.sim_time_s > 0


# -- bounded cost when on --------------------------------------------------


def _budget_sort_once(profiled: bool) -> float:
    """One non-virtual (real byte-moving) sort; returns wall seconds.

    Non-virtual partitions make the per-event simulation cost realistic
    (~hundreds of microseconds); the profiler's near-constant few
    microseconds per event must disappear into that.
    """
    rt = make_runtime(num_nodes=3, store_mib=256)
    prof = SelfProfiler() if profiled else None
    if prof is not None:
        prof.attach(rt)
    start = time.perf_counter()
    result = run_sort(rt, SortJobConfig(
        variant="push*", num_partitions=12, partition_bytes=16 * MB,
        virtual=False,
    ))
    elapsed = time.perf_counter() - start
    assert result.validated
    if prof is not None:
        prof.finish()
        assert prof.counts["events_processed"] > 0
    return elapsed


def _measure_overhead(repeats: int = 5) -> float:
    """Min-of-N overhead, interleaved so background noise hits both
    sides alike."""
    plain, profiled = [], []
    for _ in range(repeats):
        plain.append(_budget_sort_once(profiled=False))
        profiled.append(_budget_sort_once(profiled=True))
    return (min(profiled) - min(plain)) / min(plain)


def test_profiler_overhead_is_under_budget():
    """<5% wall-time overhead on a realistic run.  True overhead on this
    workload measures well under 1%; one re-measure absorbs a noisy
    first pass on a loaded CI host without loosening the budget."""
    overhead = _measure_overhead()
    if overhead >= 0.05:
        overhead = _measure_overhead()
    assert overhead < 0.05, (
        f"profiler overhead {100 * overhead:.2f}% exceeds the 5% budget"
    )


# -- throughput, counters, allocations -------------------------------------


def test_throughput_and_counters():
    _rt, prof, _result = _profiled_sort()
    thr = prof.throughput()
    assert thr["events_processed"] > 0
    assert thr["events_per_wall_s"] > 0
    assert thr["sim_s_per_wall_s"] > 0
    assert thr["sim_time_s"] == pytest.approx(prof.sim_time_s)
    counts = prof.counts
    assert counts["events_processed"] == counts["heap_pops"] > 0
    assert counts["heap_pushes"] >= counts["heap_pops"]
    assert counts["bus_publications"] > 0
    assert counts["metric_charges"] > 0
    payload = prof.to_dict()
    assert payload["coverage_error"] < 0.01
    assert set(payload["categories"]) == set(payload["fractions"])
    assert sum(payload["fractions"].values()) == pytest.approx(1.0, abs=0.02)


def test_tracemalloc_counters_are_opt_in():
    rt = make_runtime(num_nodes=2)
    prof = SelfProfiler(trace_allocations=True)
    prof.attach(rt)
    run_sort(rt, SortJobConfig(
        variant="push", num_partitions=4, partition_bytes=MB, virtual=True,
    ))
    prof.finish()
    assert isinstance(prof.counts["alloc_peak_bytes"], int)
    assert prof.counts["alloc_peak_bytes"] >= prof.counts[
        "alloc_current_bytes"] >= 0
    # ...and absent by default (the bench harness never pays for it).
    _rt, plain, _result = _profiled_sort()
    assert "alloc_peak_bytes" not in plain.counts


def test_dispatch_category_classification():
    class _Named:
        def __init__(self, name, callbacks=()):
            self.name = name
            self.callbacks = list(callbacks)

    class _Proc:
        name = "task-3-map"

        def _resume(self, event):
            pass

    class _Timeout:
        name = None
        callbacks = ()

    assert _dispatch_category(_Named("driver-get")) == "engine.dispatch.driver"
    assert _dispatch_category(_Named("job:admit")) == "engine.dispatch.job"
    unnamed = _Named(None, callbacks=[_Proc()._resume])
    assert _dispatch_category(unnamed) == "engine.dispatch.task"
    assert _dispatch_category(_Timeout()) == "engine.dispatch.timeout"


# -- flamegraph export -----------------------------------------------------


def test_flamegraph_svg_is_standalone():
    _rt, prof, _result = _profiled_sort()
    folded = folded_from_profiler(prof)
    assert folded, "profiled run must yield folded stacks"
    assert ("untracked",) in folded
    assert sum(folded.values()) == pytest.approx(prof.total_wall_s, rel=0.01)
    svg = render_flamegraph_svg(folded, title="unit test")
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert "<title>" in svg and "unit test" in svg
    assert "<script" not in svg
    # The only URL anywhere is the SVG XML namespace itself.
    stripped = svg.replace("http://www.w3.org/2000/svg", "")
    assert "http://" not in stripped and "https://" not in stripped


def test_write_flamegraph_and_folded_lines(tmp_path):
    folded = {
        ("engine.dispatch.task",): 0.25,
        ("engine.dispatch.task", "bus.publish"): 0.05,
        ("untracked",): 0.7,
        ("dropped",): 0.0,
    }
    svg_path = tmp_path / "flame.svg"
    folded_path = tmp_path / "flame.folded"
    out = write_flamegraph(folded, svg_path, folded_path=folded_path)
    assert out == svg_path and svg_path.read_text().startswith("<svg")
    lines = folded_path.read_text().splitlines()
    assert "engine.dispatch.task;bus.publish 50000" in lines
    assert "untracked 700000" in lines
    # Zero-value stacks are dropped from the canonical text.
    assert not any(line.startswith("dropped") for line in lines)
    assert lines == folded_lines(folded)


def test_folded_from_cprofile_reconstructs_stacks():
    def leaf():
        return sum(range(2000))

    def trunk():
        return [leaf() for _ in range(50)]

    with CProfileCapture() as capture:
        trunk()
    folded = folded_from_cprofile(capture.stats())
    assert folded
    labels = {frame for path in folded for frame in path}
    assert any("leaf" in label for label in labels)
    assert any("trunk" in label for label in labels)
    # Reconstructed stacks nest trunk above leaf on some path.
    assert any(
        any("trunk" in f for f in path[:-1]) and "leaf" in path[-1]
        for path in folded
    )


# -- report + explorer integration -----------------------------------------


def test_record_run_stamps_profile_and_report_renders_engine(tmp_path):
    rt, prof, _result = _profiled_sort()
    assert rt.self_profiler is prof
    path = tmp_path / "run.events.jsonl"
    record_run(rt, str(path))
    report = RunReport.load(str(path))
    engine = report.engine_summary()
    assert engine["events_processed"] == prof.counts["events_processed"]
    assert engine["events_per_wall_s"] > 0
    assert engine["coverage_error"] < 0.01
    assert engine["top_categories"]
    top = engine["top_categories"][0]
    assert set(top) == {"category", "seconds", "share"}
    rendered = report.render()
    assert "Engine self-profile" in rendered
    assert "events/s" in rendered
    table = report.engine_table()
    assert table.rows and table.rows[0]["share_pct"] <= 100.0
    assert report.to_dict()["engine_summary"] == engine


def test_report_without_profiler_has_no_engine_section(tmp_path):
    rt = make_runtime(num_nodes=2)
    run_sort(rt, SortJobConfig(
        variant="push", num_partitions=4, partition_bytes=MB, virtual=True,
    ))
    path = tmp_path / "plain.events.jsonl"
    record_run(rt, str(path))
    report = RunReport.load(str(path))
    assert report.engine_summary() == {}
    assert not report.engine_table().rows
    assert "Engine self-profile" not in report.render()


def test_html_explorer_embeds_engine_summary(tmp_path):
    from repro.obs.live import render_html

    rt, _prof, _result = _profiled_sort()
    path = tmp_path / "run.events.jsonl"
    record_run(rt, str(path))
    html = render_html(EventBus.load_jsonl(str(path)))
    assert "Engine self-profile" in html
    assert "engine_summary" in html
    # The recorded throughput numbers ride inside the data payload.
    assert "events_per_wall_s" in html


# -- the non-gating perf trajectory ----------------------------------------


def _bench_payload(wall_s: float, events_per_s: float):
    return {
        "name": "traj",
        "rows": [{"variant": "push", "seconds": 12.0}],
        "sim_time_s": 12.0,
        "counters": {"spill_bytes": 1000.0},
        "wall_time_s": wall_s,
        "profile": {
            "events_per_wall_s": events_per_s,
            "sim_s_per_wall_s": 12.0 / wall_s,
            "events_processed": 60_000,
        },
        "fingerprint": {"bench": "traj", "scale": 1},
    }


def test_trajectory_rows_track_host_speed_without_gating():
    baseline = _bench_payload(wall_s=1.0, events_per_s=60_000.0)
    candidate = _bench_payload(wall_s=2.5, events_per_s=24_000.0)
    report = compare_benches(baseline, candidate)
    # A 2.5x host slowdown: visible on the trajectory, invisible to the
    # gate (simulated metrics are identical).
    assert report.ok
    assert {m.metric for m in report.metrics}.isdisjoint(
        {name for name, _path in TRAJECTORY_FIELDS}
    )
    rows = {row["metric"]: row for row in report.trajectory}
    assert rows["wall_time_s"]["delta_pct"] == pytest.approx(150.0)
    assert rows["events_per_wall_s"]["delta_pct"] == pytest.approx(-60.0)
    assert "Perf trajectory (non-gating)" in report.render()
    assert "never gate" in report.render()
    assert report.to_dict()["trajectory"] == report.trajectory


def test_trajectory_rows_survive_missing_profile_sections():
    baseline = _bench_payload(wall_s=1.0, events_per_s=60_000.0)
    bare = {k: v for k, v in baseline.items() if k != "profile"}
    rows = {row["metric"]: row for row in trajectory_rows(bare, baseline)}
    assert "wall_time_s" in rows
    # A profile on one side only still rides along -- with a None
    # baseline and no delta (nothing to compare against).
    assert rows["events_per_wall_s"]["baseline"] is None
    assert rows["events_per_wall_s"]["delta_pct"] is None
    assert rows["events_per_wall_s"]["candidate"] == pytest.approx(60_000.0)
    # Two profile-free payloads still track wall time.
    assert {r["metric"] for r in trajectory_rows(bare, bare)} == {
        "wall_time_s"
    }


# -- the CLI ---------------------------------------------------------------


def test_cli_profile_workload_writes_artifacts(tmp_path, capsys):
    from repro.obs.__main__ import main

    flame = tmp_path / "chaos.flame.svg"
    folded = tmp_path / "chaos.folded"
    rc = main([
        "profile", "--workload", "chaos", "--seed", "0",
        "--flame", str(flame), "--folded", str(folded), "--json",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    # The JSON payload comes first; "wrote <path>" lines follow it.
    payload = json.loads(out.partition("\nwrote ")[0])
    assert payload["events_processed"] > 0
    assert payload["coverage_error"] < 0.01
    assert sum(payload["categories"].values()) == pytest.approx(
        payload["wall_time_s"], rel=0.01
    )
    assert flame.read_text().startswith("<svg")
    assert folded.read_text().strip()


def test_cli_profile_trace_mode_profiles_the_pipeline(tmp_path, capsys):
    from repro.obs.__main__ import main

    rt, _prof, _result = _profiled_sort()
    trace = tmp_path / "run.events.jsonl"
    record_run(rt, str(trace))
    rc = main(["profile", str(trace)])
    assert rc == 0
    out = capsys.readouterr().out
    # Self-profile of the offline pipeline over the recording...
    assert "trace.load" in out
    # ...plus the engine profile recorded inside the trace itself.
    assert "recorded in trace" in out.lower() or "engine" in out.lower()
