"""The benchmark harness's own helpers (scaling, table utilities)."""

import pytest

from benchmarks._harness import (
    SCALED_TB,
    SORT_SCALE,
    column_by_variant,
    hdd_node,
    run_es_sort,
    scaled_node,
    ssd_node,
)
from repro.cluster import D3_2XLARGE, I3_2XLARGE
from repro.metrics import ResultTable


class TestScaling:
    def test_scaled_node_shrinks_store_only(self):
        node = scaled_node(D3_2XLARGE)
        assert node.object_store_bytes == D3_2XLARGE.object_store_bytes // SORT_SCALE
        assert node.disk == D3_2XLARGE.disk
        assert node.cores == D3_2XLARGE.cores

    def test_presets_wired(self):
        assert hdd_node().disk == D3_2XLARGE.disk
        assert ssd_node().disk == I3_2XLARGE.disk

    def test_data_to_memory_ratio_preserved(self):
        """The scaled 1 TB keeps the paper's ~5.3x data:store ratio."""
        node = hdd_node()
        ratio = SCALED_TB / (node.object_store_bytes * 10)
        paper_ratio = 10**12 / (D3_2XLARGE.object_store_bytes * 10)
        assert ratio == pytest.approx(paper_ratio, rel=0.01)


class TestTableHelpers:
    def test_column_by_variant(self):
        table = ResultTable("t", ["variant", "partitions", "seconds"])
        table.add_row(variant="simple", partitions=100, seconds=10.0)
        table.add_row(variant="push*", partitions=100, seconds=8.0)
        table.add_row(variant="simple", partitions=200, seconds=12.0)
        simple = column_by_variant(table, "simple")
        assert simple == {100: 10.0, 200: 12.0}


class TestRunHelper:
    def test_run_es_sort_validates_and_returns_runtime(self):
        node = ssd_node()
        result, rt = run_es_sort(
            node, 2, "push*", 4, 32 * 10**6, output_to_disk=False
        )
        assert result.validated
        assert rt.counters.get("tasks_finished") > 0
