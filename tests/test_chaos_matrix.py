"""The failure matrix: every shuffle variant x every fault kind.

Each cell runs one seeded shuffle under one injected fault and asserts
the three chaos-harness guarantees: the output is byte-identical to the
fault-free run (and to the offline oracle), the retry count is bounded,
and the quiesced runtime passes the full invariant suite.  A separate
test pins determinism: re-running a cell with the same seed reproduces
identical outputs, retry counts, and counters.
"""

import pytest

from repro.chaos import (
    ChaosInjector,
    ChaosPlan,
    FaultKind,
    FaultSpec,
    SHUFFLE_VARIANTS,
    expected_output,
    matrix_plan,
    run_chaos_shuffle,
)
from repro.cluster import FailurePlan
from repro.cluster.failures import FailureInjector

from tests.conftest import make_runtime

SEED = 11

_baseline_cache = {}


def _baseline(variant):
    if variant not in _baseline_cache:
        _baseline_cache[variant] = run_chaos_shuffle(variant, None, seed=SEED)
    return _baseline_cache[variant]


class TestFailureMatrix:
    @pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
    @pytest.mark.parametrize("variant", SHUFFLE_VARIANTS)
    def test_variant_survives_fault(self, variant, kind):
        baseline = _baseline(variant)
        assert baseline.output == expected_output(SEED)
        assert baseline.retries == 0
        assert not baseline.violations

        report = run_chaos_shuffle(
            variant, matrix_plan(kind, seed=SEED), seed=SEED
        )
        assert report.output == baseline.output
        assert not report.violations
        assert len(report.injected) == 1
        assert report.injected[0][1] == kind.value
        # Retries stay bounded: a handful of re-executions, not a storm.
        assert 0 <= report.retries <= 3 * len(report.stats) + 40

    def test_compound_plan_recovers(self):
        """Several overlapping faults in one run still converge."""
        plan = ChaosPlan(
            faults=(
                FaultSpec(FaultKind.NODE_CRASH, at_time=1.0, duration=3.0),
                FaultSpec(
                    FaultKind.DISK_STALL, at_time=0.5, duration=6.0,
                    node_index=3, severity=10.0,
                ),
                FaultSpec(
                    FaultKind.STRAGGLER, at_time=0.0, duration=30.0,
                    severity=1.0, probability=0.3,
                ),
            ),
            seed=SEED,
        )
        report = run_chaos_shuffle("push", plan, seed=SEED)
        assert report.output == _baseline("push").output
        assert not report.violations
        assert len(report.injected) == 3


class TestDeterminism:
    @pytest.mark.parametrize(
        "kind",
        [FaultKind.NODE_CRASH, FaultKind.OBJECT_LOSS, FaultKind.STRAGGLER],
        ids=lambda k: k.value,
    )
    def test_same_seed_reproduces_run_exactly(self, kind):
        first = run_chaos_shuffle("push", matrix_plan(kind, seed=5), seed=5)
        second = run_chaos_shuffle("push", matrix_plan(kind, seed=5), seed=5)
        assert first.output == second.output
        assert first.retries == second.retries
        assert first.duration == second.duration
        assert first.injected == second.injected
        assert first.stats == second.stats

    def test_different_plan_seed_changes_victim_choice(self):
        fault = FaultSpec(FaultKind.NODE_CRASH, at_time=1.0, duration=2.0)
        victims = {
            ChaosPlan([fault], seed=s).resolve_victim(0, fault, num_nodes=16)
            for s in range(12)
        }
        assert len(victims) > 1
        assert 0 not in victims  # node 0 hosts the driver


class TestPlanValidation:
    def test_invalid_plan_arms_nothing(self):
        rt = make_runtime(num_nodes=2)
        plan = ChaosPlan(
            faults=(
                FaultSpec(FaultKind.NODE_CRASH, at_time=0.5, node_index=1),
                FaultSpec(FaultKind.OBJECT_LOSS, at_time=1.0, severity=2.0),
            )
        )
        with pytest.raises(ValueError):
            ChaosInjector(rt, plan)
        rt.env.run()
        # The valid first fault must not have fired either.
        assert all(node.alive for node in rt.cluster.nodes)
        assert rt.counters.get("chaos_faults_injected") == 0

    def test_spec_validation_messages(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NODE_CRASH, at_time=-1.0).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.SLOW_NODE, at_time=0.0, severity=1.0).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.OBJECT_LOSS, at_time=0.0, severity=0.0).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(
                FaultKind.STRAGGLER, at_time=0.0, probability=1.5
            ).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.NODE_CRASH, at_time=0.0, node_index=9).validate(4)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_DOWN, at_time=0.0, node_index=0).validate(1)
        # Cluster-wide straggler is fine even on one node.
        FaultSpec(FaultKind.STRAGGLER, at_time=0.0).validate(1)


class TestFailureInjectorRegression:
    def test_invalid_plan_in_batch_schedules_nothing(self):
        """An invalid plan anywhere in the batch must leave zero events
        armed -- previously, plans before the bad one were already
        scheduled when ``__init__`` raised mid-loop."""
        rt = make_runtime(num_nodes=1)
        plans = [
            FailurePlan(at_time=0.5, node_index=0),  # valid on 1 node
            FailurePlan(at_time=1.0, node_index=None),  # random needs >= 2
        ]
        with pytest.raises(ValueError):
            FailureInjector(rt.cluster, plans)
        rt.env.run()
        assert all(node.alive for node in rt.cluster.nodes)
        assert rt.counters.get("node_failures") == 0

    def test_valid_batch_still_schedules_all(self):
        rt = make_runtime(num_nodes=3)
        injector = FailureInjector(
            rt.cluster,
            [
                FailurePlan(at_time=0.5, downtime=1.0, node_index=1),
                FailurePlan(at_time=0.7, downtime=1.0, node_index=2),
            ],
        )
        rt.env.run()
        assert len(injector.injected) == 2
        assert all(node.alive for node in rt.cluster.nodes)  # restarted
