"""Online aggregation (Fig 5): streaming vs batch behaviour."""

import numpy as np
import pytest

from repro.aggregation import kl_divergence, run_online_aggregation
from repro.workloads import PageviewDataset

from tests.conftest import make_runtime


def small_dataset(hours=24, block_mb=32):
    return PageviewDataset(
        num_hours=hours,
        languages=4,
        pages_per_language=200,
        block_bytes=block_mb * 10**6,
        views_per_hour=200_000,
        seed=7,
    )


class TestWorkload:
    def test_hourly_blocks_deterministic(self):
        data = small_dataset()
        a, b = data.hourly_block(3), data.hourly_block(3)
        for lang in data.languages:
            assert (a.counts[lang] == b.counts[lang]).all()

    def test_zipf_head_dominates(self):
        block = small_dataset().hourly_block(0)
        counts = block.counts["lang00"]
        assert counts[:10].sum() > counts[100:].sum()

    def test_final_distribution_normalised(self):
        data = small_dataset(hours=6)
        final = data.final_distribution()
        for dist in final.values():
            assert dist.sum() == pytest.approx(1.0)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            small_dataset().hourly_block(9999)
        with pytest.raises(ValueError):
            PageviewDataset(num_hours=0)


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.5, 0.3, 0.2])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        assert kl_divergence(np.array([0.9, 0.1]), np.array([0.5, 0.5])) > 0.1


class TestOnlineAggregation:
    def test_batch_mode_produces_exact_final_answer(self):
        rt = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        result = run_online_aggregation(
            rt, small_dataset(), num_reduces=4, mode="batch"
        )
        assert result.final_error == pytest.approx(0.0, abs=1e-9)
        assert result.total_seconds > 0
        assert len(result.error_series) == 1  # only the final answer

    def test_streaming_mode_emits_partial_results(self):
        rt = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        result = run_online_aggregation(
            rt,
            small_dataset(hours=24),
            num_reduces=4,
            mode="streaming",
            hours_per_round=6,
        )
        # one partial per round plus the final
        assert len(result.error_series) >= 4
        errors = result.error_series.values
        # partials converge towards the final answer
        assert errors[0] > errors[-1]
        assert result.final_error == pytest.approx(0.0, abs=1e-9)

    def test_streaming_partial_early_and_accurate(self):
        """The headline: a usable partial long before batch finishes."""
        data = small_dataset(hours=48, block_mb=24)
        rt_batch = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        batch = run_online_aggregation(rt_batch, data, 4, mode="batch")
        rt_stream = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        stream = run_online_aggregation(
            rt_stream, data, 4, mode="streaming", hours_per_round=6
        )
        t_partial = stream.first_time_within(0.08)
        assert t_partial < 0.6 * batch.total_seconds

    def test_streaming_total_slower_than_batch(self):
        data = small_dataset(hours=48, block_mb=24)
        rt_batch = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        batch = run_online_aggregation(rt_batch, data, 4, mode="batch")
        rt_stream = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        stream = run_online_aggregation(
            rt_stream, data, 4, mode="streaming", hours_per_round=6
        )
        assert stream.total_seconds > batch.total_seconds

    def test_progress_series_reach_one(self):
        rt = make_runtime(num_nodes=2, store_mib=2048, nic_mb_s=1500.0)
        result = run_online_aggregation(
            rt, small_dataset(hours=12), num_reduces=4, mode="streaming",
            hours_per_round=4,
        )
        assert result.map_progress.values[-1] == pytest.approx(1.0)
        assert result.reduce_progress.values[-1] == pytest.approx(1.0)

    def test_unknown_mode_rejected(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(ValueError):
            run_online_aggregation(rt, small_dataset(), mode="warp")
