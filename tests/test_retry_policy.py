"""Retry/backoff policies and post-failure scheduler blacklisting."""

import pytest

from repro.common.errors import RetryExhaustedError, TaskDeadlineError
from repro.futures import RetryPolicy, RuntimeConfig

from tests.conftest import make_runtime


def _fast_detect(**kwargs):
    return RuntimeConfig(failure_detection_s=1.0, **kwargs)


class TestPolicyMath:
    def test_default_policy_reproduces_seed_behaviour(self):
        """Unlimited immediate retries, no deadline: the zero-cost default."""
        policy = RetryPolicy()
        assert policy.should_retry(10**6)
        assert policy.backoff_s(1) == 0.0
        assert policy.backoff_s(50) == 0.0
        assert not policy.deadline_exceeded(0.0, 1e12)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not policy.should_retry(4)

    def test_exponential_sequence_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=2.0, max_backoff_s=8.0
        )
        assert policy.backoff_sequence(6) == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(
            base_backoff_s=1.0,
            backoff_multiplier=2.0,
            max_backoff_s=60.0,
            jitter_fraction=0.25,
            seed=3,
        )
        first = policy.backoff_sequence(20, task_key=7)
        assert first == policy.backoff_sequence(20, task_key=7)
        for attempt, delay in enumerate(first, start=1):
            raw = min(2.0 ** (attempt - 1), 60.0)
            assert raw * 0.75 <= delay <= raw * 1.25
        # Jitter actually perturbs (not all delays exactly raw)...
        assert any(
            delay != min(2.0 ** (attempt - 1), 60.0)
            for attempt, delay in enumerate(first, start=1)
        )
        # ...and different seeds / task keys give different streams.
        reseeded = RetryPolicy(
            base_backoff_s=1.0, jitter_fraction=0.25, seed=4
        ).backoff_sequence(20, task_key=7)
        assert reseeded != first
        assert policy.backoff_sequence(20, task_key=8) != first

    def test_deadline_predicate(self):
        policy = RetryPolicy(task_deadline_s=5.0)
        assert not policy.deadline_exceeded(10.0, 15.0)
        assert policy.deadline_exceeded(10.0, 15.1)

    def test_validation_rejects_malformed_policies(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=10.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(task_deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0)


class TestRuntimeIntegration:
    def test_retry_exhaustion_surfaces_typed_error(self):
        rt = make_runtime(
            num_nodes=3,
            config=_fast_detect(retry_policy=RetryPolicy(max_attempts=1)),
        )
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.cluster.node(victim).fail()
            with pytest.raises(RetryExhaustedError):
                rt.get(ref)

        rt.run(driver)
        assert rt.counters.get("tasks_resubmitted") == 0
        assert rt.counters.get("tasks_failed") >= 1

    def test_deadline_surfaces_typed_error(self):
        rt = make_runtime(
            num_nodes=3,
            config=_fast_detect(retry_policy=RetryPolicy(task_deadline_s=5.0)),
        )
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.sleep(10.0)  # burn the deadline while the object is alive
            rt.cluster.node(victim).fail()
            with pytest.raises(TaskDeadlineError):
                rt.get(ref)

        rt.run(driver)

    def test_backoff_delays_resubmission(self):
        rt = make_runtime(
            num_nodes=3,
            config=_fast_detect(retry_policy=RetryPolicy(base_backoff_s=5.0)),
        )
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            failed_at = rt.timestamp()
            rt.cluster.node(victim).fail()
            value = rt.get(ref)
            return value, rt.timestamp() - failed_at

        value, recovery = rt.run(driver)
        assert value == "precious"
        # Recovery pays failure detection (1s) plus the first backoff (5s).
        assert recovery >= 6.0
        assert rt.counters.get("retry_backoff_s") >= 5.0
        assert rt.counters.get("tasks_resubmitted") >= 1

    def test_retries_still_unbounded_by_default(self):
        rt = make_runtime(num_nodes=3, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.cluster.node(victim).fail()
            return rt.get(ref)

        assert rt.run(driver) == "precious"
        assert rt.counters.get("retry_backoff_s") == 0


class TestSchedulerBlacklist:
    def test_cooldown_expires(self):
        rt = make_runtime(
            num_nodes=3, config=RuntimeConfig(blacklist_cooldown_s=10.0)
        )
        target = rt.cluster.node_ids[1]
        rt.scheduler.note_failure(target)
        assert rt.scheduler.is_blacklisted(target)
        observed = []
        rt.env.call_later(
            9.0, lambda: observed.append(rt.scheduler.is_blacklisted(target))
        )
        rt.env.call_later(
            11.0, lambda: observed.append(rt.scheduler.is_blacklisted(target))
        )
        rt.env.run()
        assert observed == [True, False]

    def test_zero_cooldown_disables_blacklisting(self):
        rt = make_runtime(num_nodes=3)  # default config: cooldown 0
        target = rt.cluster.node_ids[1]
        rt.scheduler.note_failure(target)
        assert not rt.scheduler.is_blacklisted(target)

    def test_placement_avoids_blacklisted_node(self):
        rt = make_runtime(
            num_nodes=3, config=RuntimeConfig(blacklist_cooldown_s=100.0)
        )
        target = rt.cluster.node_ids[1]
        rt.scheduler.note_failure(target)
        work = rt.remote(lambda: 1)

        def driver():
            return rt.get([work.remote() for _ in range(9)])

        assert rt.run(driver) == [1] * 9
        placements = {rec.assigned_node for rec in rt.tasks.values()}
        assert target not in placements
        assert len(placements) >= 2  # work still spreads across the rest

    def test_all_blacklisted_falls_back_to_any_alive_node(self):
        rt = make_runtime(
            num_nodes=2, config=RuntimeConfig(blacklist_cooldown_s=100.0)
        )
        for node_id in rt.cluster.node_ids:
            rt.scheduler.note_failure(node_id)
        work = rt.remote(lambda: "still runs")

        def driver():
            return rt.get(work.remote())

        assert rt.run(driver) == "still runs"

    def test_node_death_populates_blacklist(self):
        rt = make_runtime(
            num_nodes=3,
            config=_fast_detect(blacklist_cooldown_s=30.0),
        )
        victim = rt.cluster.node_ids[2]

        def driver():
            rt.cluster.node(victim).fail()
            rt.sleep(0.1)
            return rt.scheduler.is_blacklisted(victim)

        assert rt.run(driver)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(blacklist_cooldown_s=-1.0)
