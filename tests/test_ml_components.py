"""Smaller ML components: accelerator, training results, magnet locality."""

import numpy as np
import pytest

from repro.common.units import MB
from repro.ml.accelerator import AcceleratorSpec, T4_LIKE
from repro.ml.training import TrainingResult
from repro.shuffle import magnet_shuffle
from repro.sort import SortOps, uniform_bounds
from repro.sort.datagen import generate_partitions

from tests.conftest import make_runtime


class TestAccelerator:
    def test_seconds_scale_with_bytes(self):
        assert T4_LIKE.seconds_for(600 * MB) == pytest.approx(1.0)
        assert T4_LIKE.seconds_for(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorSpec(name="bad", train_bytes_per_sec=0)


class TestTrainingResult:
    def test_aggregates(self):
        result = TrainingResult(
            label="x",
            epoch_seconds=[2.0, 4.0],
            accuracies=[0.5, 0.8],
            total_seconds=7.0,
        )
        assert result.mean_epoch_seconds == 3.0
        assert result.final_accuracy == 0.8

    def test_empty_result_is_safe(self):
        result = TrainingResult(label="empty")
        assert result.mean_epoch_seconds == 0.0
        assert result.final_accuracy == 0.0


class TestMagnetLocality:
    def test_merges_and_reduce_share_reducer_home(self):
        """Magnet's point: merge tasks for reducer r run on r's node, so
        the final reduce reads locally."""
        rt = make_runtime(num_nodes=3)
        num_reduces = 6
        ops = SortOps(uniform_bounds(num_reduces))

        def driver():
            parts = generate_partitions(rt, 6, 2 * MB, virtual=True)
            refs = magnet_shuffle(
                rt, parts, ops.map, ops.merge, ops.reduce, num_reduces,
                merge_factor=3,
            )
            rt.wait(refs, num_returns=len(refs))
            return refs

        refs = rt.run(driver)
        nodes = rt.cluster.node_ids
        merge_records = [
            r for r in rt.tasks.values() if r.spec.fn_name == "merge"
        ]
        reduce_records = [
            r for r in rt.tasks.values() if r.spec.fn_name == "reduce"
        ]
        assert merge_records and reduce_records
        # Affinity: every merge/reduce pinned node matches its placement.
        for record in merge_records + reduce_records:
            assert record.assigned_node == record.spec.options.node
        # Reducer r and its merges share a home: group by options.node.
        reduce_homes = {r.spec.options.node for r in reduce_records}
        merge_homes = {r.spec.options.node for r in merge_records}
        assert merge_homes <= set(nodes)
        assert reduce_homes == merge_homes
