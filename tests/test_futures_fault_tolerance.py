"""Lineage reconstruction and failure handling (§4.2.3, §5.1.5)."""

import numpy as np
import pytest

from repro.common.errors import ObjectLostError
from repro.common.units import MB
from repro.futures import RuntimeConfig

from tests.conftest import make_runtime

# Every runtime these tests build must satisfy the data-plane invariants
# (refcount balance, location consistency, reconstructable lineage) once
# it quiesces -- even after the failures injected below.
pytestmark = pytest.mark.usefixtures("check_invariants")


def _blob(mb):
    return np.zeros(int(mb * MB), dtype=np.uint8)


def _fast_detect(**kwargs):
    return RuntimeConfig(failure_detection_s=2.0, **kwargs)


class TestLineageReconstruction:
    def test_lost_object_reconstructed_for_get(self):
        rt = make_runtime(num_nodes=3, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "precious").options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.cluster.node(victim).fail()
            value = rt.get(ref)  # must re-execute the task elsewhere
            return value, rt.task_attempts(ref)

        value, attempts = rt.run(driver)
        assert value == "precious"
        assert attempts == 2
        assert rt.counters.get("tasks_resubmitted") >= 1

    def test_reconstruction_is_transitive(self):
        """Losing a chain of objects re-runs the whole upstream lineage."""
        rt = make_runtime(num_nodes=3, config=_fast_detect())
        victim = rt.cluster.node_ids[2]
        base = rt.remote(lambda: 1).options(node=victim)
        inc = rt.remote(lambda x: x + 1).options(node=victim)

        def driver():
            a = base.remote()
            b = inc.remote(a)
            c = inc.remote(b)
            rt.wait([c], num_returns=1)
            rt.cluster.node(victim).fail()
            return rt.get(c)

        assert rt.run(driver) == 3
        assert rt.counters.get("tasks_resubmitted") >= 3

    def test_running_tasks_on_dead_node_requeued(self):
        rt = make_runtime(num_nodes=2, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        slow = rt.remote(lambda: "done").options(node=victim, compute=30.0)

        def driver():
            ref = slow.remote()
            rt.sleep(5.0)  # task is mid-execution
            rt.cluster.node(victim).fail()
            return rt.get(ref)

        assert rt.run(driver) == "done"
        # Re-ran from scratch on the surviving node.
        assert rt.now >= 30.0 + 5.0

    def test_spilled_data_on_dead_node_is_lost_and_rebuilt(self):
        rt = make_runtime(num_nodes=2, store_mib=32, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda i: (i, _blob(16))).options(node=victim)

        def driver():
            refs = [make.remote(i) for i in range(6)]  # forces spilling
            rt.wait(refs, num_returns=len(refs))
            rt.cluster.node(victim).fail()
            return [tag for tag, _ in rt.get(refs)]

        assert rt.run(driver) == list(range(6))

    def test_object_with_surviving_copy_needs_no_reconstruction(self):
        """A copy fetched to another node keeps the object alive."""
        rt = make_runtime(num_nodes=2, config=_fast_detect())
        a, b = rt.cluster.node_ids
        make = rt.remote(lambda: _blob(10)).options(node=b)
        touch = rt.remote(lambda x: x.nbytes).options(node=a)

        def driver():
            src = make.remote()
            rt.get(touch.remote(src))  # copies the object to node a
            rt.cluster.node(b).fail()
            rt.sleep(5.0)
            return rt.get(touch.remote(src))

        assert rt.run(driver) == 10 * MB
        assert rt.counters.get("tasks_resubmitted") == 0

    def test_reconstruction_disabled_raises_object_lost(self):
        config = RuntimeConfig(
            failure_detection_s=2.0, enable_lineage_reconstruction=False
        )
        rt = make_runtime(num_nodes=2, config=config)
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: 5).options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.cluster.node(victim).fail()
            rt.sleep(5.0)
            with pytest.raises(ObjectLostError):
                rt.get(ref)
            return True

        assert rt.run(driver)

    def test_lost_put_object_is_unrecoverable(self):
        """put() objects have no lineage; losing them is fatal for get."""
        config = RuntimeConfig(failure_detection_s=2.0)
        rt = make_runtime(num_nodes=2, config=config)

        def driver():
            ref = rt.put("unrecoverable")
            rt.cluster.node(rt.driver_node_id).fail()
            rt.sleep(5.0)
            with pytest.raises(ObjectLostError):
                rt.get(ref)
            return True

        assert rt.run(driver)

    def test_failure_detection_delay_gates_recovery(self):
        """Recovery cannot complete before the heartbeat timeout elapses."""
        config = RuntimeConfig(failure_detection_s=20.0)
        rt = make_runtime(num_nodes=2, config=config)
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: "v").options(node=victim, compute=0.1)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            fail_time = rt.timestamp()
            rt.cluster.node(victim).fail()
            value = rt.get(ref)
            return rt.timestamp() - fail_time, value

        recovery, value = rt.run(driver)
        assert value == "v"
        assert recovery >= 20.0

    def test_node_restart_rejoins_cluster(self):
        rt = make_runtime(num_nodes=2, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        pinned = rt.remote(lambda: "here").options(node=victim)

        def driver():
            rt.cluster.node(victim).fail()
            rt.sleep(3.0)
            rt.cluster.node(victim).restart()
            return rt.get(pinned.remote())

        assert rt.run(driver) == "here"

    def test_double_failure_still_recovers(self):
        rt = make_runtime(num_nodes=3, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        make = rt.remote(lambda: 99).options(node=victim)

        def driver():
            ref = make.remote()
            rt.wait([ref], num_returns=1)
            rt.cluster.node(victim).fail()
            rt.sleep(1.0)
            rt.cluster.node(victim).restart()
            rt.sleep(1.0)
            rt.cluster.node(victim).fail()
            return rt.get(ref)

        assert rt.run(driver) == 99


class TestFailureDuringShuffleTraffic:
    def test_consumer_survives_source_death_mid_job(self):
        """Consumers fetching from a node that dies retry and recover."""
        rt = make_runtime(num_nodes=3, config=_fast_detect())
        victim = rt.cluster.node_ids[1]
        sink_node = rt.cluster.node_ids[2]
        make = rt.remote(lambda i: (i, _blob(20))).options(node=victim)
        consume = rt.remote(lambda *blocks: sum(t for t, _ in blocks)).options(
            node=sink_node
        )

        def driver():
            srcs = [make.remote(i) for i in range(6)]
            rt.wait(srcs, num_returns=len(srcs))
            out = consume.remote(*srcs)
            rt.cluster.node(victim).fail()
            return rt.get(out)

        assert rt.run(driver) == sum(range(6))
