"""Windowed shuffle loader (Fig 2d-iii) and CloudSort cost accounting."""

import numpy as np
import pytest

from repro.common.units import TB
from repro.ml import ExoshuffleLoader, SyntheticHiggs
from repro.ml.loaders import WindowedExoshuffleLoader, stage_blocks
from repro.sort.cloudsort import CloudSortCost, cloudsort_cost

from tests.conftest import make_runtime


class TestWindowedLoader:
    def _staged(self, rt, n=4000, blocks=8):
        data = SyntheticHiggs(num_samples=n, seed=3, io_scale=20.0)
        bl = data.training_blocks(blocks)
        return rt.run(lambda: stage_blocks(rt, bl)), data

    def test_conserves_samples(self):
        rt = make_runtime(num_nodes=2)
        refs, _ = self._staged(rt)
        loader = WindowedExoshuffleLoader(rt, refs, window_partitions=3)
        out = rt.run(lambda: rt.get(loader.submit_epoch(0)))
        assert sum(b.num_records for b in out) == 4000

    def test_window_limits_mixing(self):
        """A window never mixes samples across window boundaries, so with
        label-sorted storage the first window's outputs stay one-label
        while a full shuffle's outputs are balanced."""
        rt = make_runtime(num_nodes=2)
        refs, _ = self._staged(rt)
        windowed = WindowedExoshuffleLoader(rt, refs, window_partitions=2)
        out = rt.run(lambda: rt.get(windowed.submit_epoch(0)))
        first_window_labels = np.concatenate(
            [b.labels for b in out[:2]]
        )
        assert first_window_labels.mean() < 0.1

        full = ExoshuffleLoader(rt, refs, seed=1)
        out_full = rt.run(lambda: rt.get(full.submit_epoch(0)))
        assert all(0.2 < b.labels.mean() < 0.8 for b in out_full)

    def test_wider_window_mixes_more(self):
        rt = make_runtime(num_nodes=2)
        refs, _ = self._staged(rt)

        def imbalance(window):
            loader = WindowedExoshuffleLoader(rt, refs, window_partitions=window)
            out = rt.run(lambda: rt.get(loader.submit_epoch(0)))
            return float(
                np.mean([abs(b.labels.mean() - 0.5) for b in out])
            )

        assert imbalance(8) <= imbalance(2)

    def test_validation(self):
        rt = make_runtime(num_nodes=1)
        with pytest.raises(ValueError):
            WindowedExoshuffleLoader(rt, [], window_partitions=2)


class TestCloudSort:
    def test_cost_arithmetic(self):
        cost = cloudsort_cost("d3.2xlarge", 100, 3600.0, int(100 * TB))
        assert cost.total_dollars == pytest.approx(100 * 0.999)
        assert cost.dollars_per_tb == pytest.approx(0.999)

    def test_cheaper_when_faster(self):
        slow = cloudsort_cost("i3.2xlarge", 10, 7200.0, TB)
        fast = cloudsort_cost("i3.2xlarge", 10, 3600.0, TB)
        assert fast.total_dollars < slow.total_dollars

    def test_custom_price_and_unknown_type(self):
        custom = cloudsort_cost("weird.9xl", 1, 3600.0, TB, hourly_price=2.0)
        assert custom.total_dollars == pytest.approx(2.0)
        with pytest.raises(ValueError):
            cloudsort_cost("weird.9xl", 1, 3600.0, TB)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            cloudsort_cost("d3.2xlarge", 0, 3600.0, TB)
        with pytest.raises(ValueError):
            cloudsort_cost("d3.2xlarge", 1, 0.0, TB)

    def test_str_rendering(self):
        text = str(cloudsort_cost("d3.2xlarge", 10, 1800.0, TB))
        assert "d3.2xlarge" in text and "/TB" in text
