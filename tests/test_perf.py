"""The performance analysis layer: critical path, usage, bench diffing.

Hand-built event streams with *known* longest paths pin down the
critical-path walk exactly (including a fault -> retry chain); a real
spill-heavy external sort checks the fig 4a-style claim that the
majority of the path is disk I/O; synthetic benchmark pairs exercise
the diff tolerance bands, regression attribution, and the
config-fingerprint refusal; and the CLI gate's exit codes are checked
end to end.
"""

import json

import pytest

from repro.common.units import GB, MB
from repro.obs.events import EventBus, ObsEvent
from repro.obs.perf import (
    CATEGORIES,
    DISK_CATEGORIES,
    critical_path,
    derive_usage,
    usage_chrome_events,
)
from repro.obs.perf.diff import (
    BenchMismatchError,
    compare_benches,
    strip_volatile,
)
from repro.obs.report import RunReport, record_run
from repro.obs.trace import write_chrome_trace

from tests.conftest import make_runtime


def _events(*specs):
    """Build an ObsEvent list from (ts, kind, axes/attrs) tuples."""
    out = []
    for seq, (ts, kind, fields) in enumerate(specs):
        axes = {
            k: fields.pop(k, None) for k in ("node", "job", "task", "obj",
                                             "cause")
        }
        out.append(
            ObsEvent(seq=seq, ts=float(ts), kind=kind, attrs=fields, **axes)
        )
    return out


# -- critical path on hand-built DAGs ----------------------------------------


def test_critpath_known_longest_path():
    """A -> transfer -> C is the path; B is short and off-path."""
    events = _events(
        (0.0, "task.submit", dict(task="A", fn="a", returns=["O1"], deps=[])),
        (0.0, "task.submit", dict(task="B", fn="b", returns=["O2"], deps=[])),
        (0.0, "task.submit",
         dict(task="C", fn="c", returns=["O3"], deps=["O1", "O2"])),
        (0.0, "task.run", dict(task="A", node="N0", attempt=1)),
        (0.0, "task.run", dict(task="B", node="N1", attempt=1)),
        (2.0, "task.finish", dict(task="B", node="N1")),
        (2.0, "object.create", dict(obj="O2", node="N1", task="B", bytes=10)),
        (5.0, "task.finish", dict(task="A", node="N0")),
        (5.0, "object.create", dict(obj="O1", node="N0", task="A", bytes=10)),
        (5.0, "transfer.begin", dict(obj="O1", node="N1", src="N0", bytes=10)),
        (7.0, "transfer.end", dict(obj="O1", node="N1", cause=9, ok=True)),
        (7.0, "task.run", dict(task="C", node="N1", attempt=1)),
        (10.0, "task.finish", dict(task="C", node="N1")),
    )
    path = critical_path(events)
    assert path.makespan == pytest.approx(10.0)
    assert path.coverage_error() < 1e-9
    times = path.category_times()
    # A computes [0,5], the transfer covers [5,7], C computes [7,10]:
    # the short task B never contributes.
    assert times["compute"] == pytest.approx(8.0)
    assert times["transfer"] == pytest.approx(2.0)
    assert sum(times.values()) == pytest.approx(path.makespan)
    details = " ".join(s.detail for s in path.segments)
    assert "b" not in details.split()


def test_critpath_fault_retry_chain():
    """Dead time between a killed attempt and its retry is recovery."""
    events = _events(
        (0.0, "task.submit", dict(task="T", fn="t", returns=["O1"], deps=[])),
        (0.0, "task.run", dict(task="T", node="N0", attempt=1)),
        (2.0, "chaos.fault", dict(node="N0", fault="node_crash")),
        (2.0, "node.death", dict(node="N0", cause=2)),
        (2.0, "task.retry", dict(task="T", cause=3, attempt=2)),
        (4.0, "task.run", dict(task="T", node="N1", attempt=2)),
        (9.0, "task.finish", dict(task="T", node="N1")),
    )
    path = critical_path(events)
    assert path.makespan == pytest.approx(9.0)
    assert path.coverage_error() < 1e-9
    times = path.category_times()
    # attempt 1 ran [0,2], attempt 2 ran [4,9]; the [2,4] hole is the
    # failure-detection + rescheduling time.
    assert times["fault_recovery"] == pytest.approx(2.0)
    assert times["compute"] == pytest.approx(7.0)


def test_critpath_queue_and_spill_restore():
    """Submit-to-run waits are queue time; restores get their category."""
    events = _events(
        (0.0, "task.submit", dict(task="P", fn="p", returns=["O1"], deps=[])),
        (0.0, "task.run", dict(task="P", node="N0", attempt=1)),
        (3.0, "task.finish", dict(task="P", node="N0")),
        (3.0, "object.create", dict(obj="O1", node="N0", task="P", bytes=10)),
        (3.0, "task.submit",
         dict(task="Q", fn="q", returns=["O2"], deps=["O1"])),
        # O1 was spilled meanwhile; Q's start waits on the restore.
        (3.0, "spill.restore.begin",
         dict(obj="O1", node="N0", bytes=10, sequential=True)),
        (5.0, "spill.restore.end", dict(obj="O1", node="N0", cause=5)),
        (6.0, "task.run", dict(task="Q", node="N0", attempt=1)),
        (8.0, "task.finish", dict(task="Q", node="N0")),
    )
    path = critical_path(events)
    assert path.coverage_error() < 1e-9
    times = path.category_times()
    assert times["spill_restore"] == pytest.approx(2.0)
    # [5,6] is Q submitted-but-not-running: queue time.
    assert times["queue"] == pytest.approx(1.0)
    assert times["compute"] == pytest.approx(5.0)


def test_critpath_empty_and_categories_stable():
    path = critical_path([])
    assert path.makespan == 0.0
    assert path.segments == []
    assert set(path.category_times()) == set(CATEGORIES)
    assert set(DISK_CATEGORIES) <= set(CATEGORIES)


def test_critpath_external_sort_is_disk_bound():
    """Fig 4a regime: an out-of-core sort's path is mostly disk I/O."""
    from repro.sort import SortJobConfig, run_sort

    rt = make_runtime(num_nodes=2, store_mib=192)
    config = SortJobConfig(
        variant="push",
        num_partitions=8,
        partition_bytes=(2 * GB) // 8,
        virtual=True,
        output_to_disk=True,
    )
    result = run_sort(rt, config)
    assert result.validated
    path = critical_path(rt.bus.events)
    assert path.makespan > 0
    assert path.coverage_error() < 0.01
    disk_share = path.disk_seconds() / path.makespan
    assert disk_share > 0.5, f"expected disk-bound path, got {disk_share:.0%}"
    # The what-if ranking agrees: eliminating all disk I/O shrinks the
    # run more than eliminating compute would.
    whatif = path.what_if()
    disk_shrink = sum(whatif[c]["shrink_pct"] for c in DISK_CATEGORIES)
    assert disk_shrink > whatif["compute"]["shrink_pct"]


# -- usage timelines ----------------------------------------------------------


def test_usage_tracks_and_binding():
    events = _events(
        (0.0, "task.submit", dict(task="A", fn="a", returns=["O1"], deps=[])),
        (0.0, "task.run", dict(task="A", node="N0", attempt=1)),
        (4.0, "task.finish", dict(task="A", node="N0")),
        (4.0, "object.create", dict(obj="O1", node="N0", task="A", bytes=50)),
        (6.0, "object.evict", dict(obj="O1")),
        (0.0, "run.summary",
         dict(cluster={"N0": {"cores": 1, "object_store_bytes": 100}})),
    )
    # run.summary is synthetic/trailing in real exports; rebuild in order.
    events = sorted(events, key=lambda e: (e.ts, e.seq))
    timeline = derive_usage(events)
    assert timeline.nodes == ["N0"]
    # One core busy for 4 of 6 seconds.
    assert timeline.busy_fraction("cpu", "N0") == pytest.approx(4.0 / 6.0)
    track = timeline.track("store", "N0")
    assert track.value_at(5.0) == pytest.approx(50.0)
    assert track.value_at(6.5) == pytest.approx(0.0)
    intervals = timeline.intervals(bins=6)
    assert intervals, "expected labeled intervals"
    assert intervals[0].binding == "cpu"
    assert intervals[0].saturated  # 1 busy core of 1 total
    assert intervals[-1].binding == "idle"
    assert sum(i.duration for i in intervals) == pytest.approx(
        timeline.makespan
    )


def test_usage_spill_queue_depth():
    events = _events(
        (0.0, "store.pressure", dict(node="N0", obj="O1", bytes=10,
                                     backlog=1)),
        (1.0, "store.pressure", dict(node="N0", obj="O2", bytes=10,
                                     backlog=2)),
        (2.0, "object.create", dict(obj="O1", node="N0", task="T", bytes=10)),
        (3.0, "spill.fallback", dict(node="N0", obj="O2", bytes=10)),
    )
    track = derive_usage(events).track("spill_queue", "N0")
    assert track.value_at(0.5) == 1.0
    assert track.value_at(1.5) == 2.0
    assert track.value_at(2.5) == 1.0
    assert track.value_at(3.5) == 0.0


def test_usage_store_clamped_to_capacity():
    events = _events(
        (0.0, "object.create", dict(obj="O1", node="N0", task="T",
                                    bytes=500)),
        (0.0, "run.summary",
         dict(cluster={"N0": {"cores": 1, "object_store_bytes": 100}})),
    )
    timeline = derive_usage(sorted(events, key=lambda e: (e.ts, e.seq)))
    assert timeline.track("store", "N0").max_value() <= 100.0


def test_chrome_trace_has_counter_tracks(tmp_path):
    """write_chrome_trace rides the usage counters along by default."""
    rt = make_runtime(num_nodes=2, store_mib=8)
    produce = rt.remote(lambda: bytes(4 * MB), compute=0.01)

    def driver():
        return rt.get([produce.remote() for _ in range(8)])

    rt.run(driver)
    trace_path = tmp_path / "trace.json"
    write_chrome_trace(rt.bus.events, str(trace_path))
    trace = json.loads(trace_path.read_text())
    counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
    assert counters
    names = {e["name"] for e in counters}
    assert "object store bytes" in names
    assert {e["pid"] for e in counters} <= {
        e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"
    }
    events = usage_chrome_events(rt.bus.events)
    assert all(e["ph"] == "C" for e in events)


# -- bench diffing ------------------------------------------------------------


def _bench(name="fig_test", seconds=10.0, sim=10.0, fingerprint=None,
           critpath=None, counters=None):
    payload = {
        "name": name,
        "rows": [
            {"variant": "push", "partitions": 100, "seconds": seconds},
            {"variant": "simple", "partitions": 100, "seconds": seconds * 2},
        ],
        "sim_time_s": sim,
        "counters": counters or {"disk_bytes_written": 1000.0},
        "fingerprint": fingerprint
        if fingerprint is not None
        else {"bench": name, "sort_scale": 10, "cluster": {"N0": {"cores": 4}}},
    }
    if critpath is not None:
        payload["critpath"] = {"makespan": sim, "categories": critpath}
    return payload


def test_diff_within_tolerance_passes():
    report = compare_benches(_bench(seconds=10.0), _bench(seconds=10.5))
    assert report.ok
    assert not report.regressions


def test_diff_flags_regression_with_attribution():
    base = _bench(seconds=10.0, sim=10.0,
                  critpath={"compute": 2.0, "spill_write": 8.0})
    slow = _bench(seconds=14.0, sim=14.0,
                  critpath={"compute": 2.0, "spill_write": 12.0})
    report = compare_benches(base, slow)
    assert not report.ok
    regressed = {m.metric for m in report.regressions}
    assert any(m.startswith("seconds[") for m in regressed)
    assert "sim_time_s" in regressed
    attribution = report.attribution()
    assert attribution and "spill_write" in attribution[0]
    assert "+4.000s" in attribution[0]


def test_diff_improvement_passes_with_note():
    report = compare_benches(_bench(seconds=10.0), _bench(seconds=5.0))
    assert report.ok
    assert report.improvements
    assert "bless" in report.render()


def test_diff_missing_metric_fails():
    base = _bench()
    cand = _bench()
    cand["rows"] = cand["rows"][:1]  # the simple row disappeared
    report = compare_benches(base, cand)
    assert not report.ok
    assert any(m.status == "missing" for m in report.regressions)


def test_diff_refuses_mismatched_fingerprint():
    base = _bench()
    other_scale = _bench(
        fingerprint={"bench": "fig_test", "sort_scale": 20,
                     "cluster": {"N0": {"cores": 4}}}
    )
    with pytest.raises(BenchMismatchError, match="sort_scale"):
        compare_benches(base, other_scale)
    other_cluster = _bench(
        fingerprint={"bench": "fig_test", "sort_scale": 10,
                     "cluster": {"N0": {"cores": 8}}}
    )
    with pytest.raises(BenchMismatchError, match="cluster"):
        compare_benches(base, other_cluster)


def test_diff_tolerance_override():
    base, cand = _bench(seconds=10.0), _bench(seconds=10.8)
    assert not compare_benches(base, cand, rel_tolerance=0.05).ok
    assert compare_benches(base, cand, rel_tolerance=0.20).ok
    # Prefix overrides: loosen only the row metrics.
    assert compare_benches(
        base, cand, rel_tolerance=0.05, tolerances={"seconds[": 0.25}
    ).ok


def test_strip_volatile_drops_host_fields():
    payload = dict(_bench(), wall_time_s=1.23, written_at=999.0,
                   events_jsonl="/tmp/x", chrome_trace="/tmp/y",
                   live_html="/tmp/z")
    stripped = strip_volatile(payload)
    # wall_time_s is *tracked* now (the trajectory baseline), only the
    # write stamp and export paths are stripped.
    assert stripped["wall_time_s"] == 1.23
    assert "written_at" not in stripped
    assert "events_jsonl" not in stripped
    assert "chrome_trace" not in stripped
    assert "live_html" not in stripped
    assert stripped["rows"] == payload["rows"]


# -- CLI gate -----------------------------------------------------------------


def test_cli_gate_exit_codes(tmp_path, capsys):
    from repro.obs.__main__ import main

    baselines = tmp_path / "baselines"
    results = tmp_path / "results"
    baselines.mkdir()
    results.mkdir()
    base = _bench(seconds=10.0, critpath={"spill_write": 8.0})
    (baselines / "BENCH_fig_test.json").write_text(json.dumps(base))
    (results / "BENCH_fig_test.json").write_text(json.dumps(base))
    args = ["diff", "--gate", "--baselines", str(baselines),
            "--results", str(results)]
    assert main(args) == 0
    slow = _bench(seconds=14.0, critpath={"spill_write": 12.0})
    (results / "BENCH_fig_test.json").write_text(json.dumps(slow))
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "GATE: FAIL" in out
    assert "spill_write" in out
    # A missing candidate result also fails the gate.
    (results / "BENCH_fig_test.json").unlink()
    assert main(args) == 1


def test_cli_bless_then_gate_roundtrip(tmp_path):
    from repro.obs.__main__ import main

    result = _bench(seconds=10.0)
    result["wall_time_s"] = 42.0
    result_path = tmp_path / "BENCH_fig_test.json"
    result_path.write_text(json.dumps(result))
    baselines = tmp_path / "baselines"
    assert main(["bless", str(result_path), "--baselines",
                 str(baselines)]) == 0
    blessed = json.loads((baselines / "BENCH_fig_test.json").read_text())
    # Blessed baselines keep wall_time_s: it feeds the non-gating
    # trajectory track but never the behavior gate itself.
    assert blessed["wall_time_s"] == 42.0
    assert main(["diff", "--gate", "--baselines", str(baselines),
                 "--results", str(tmp_path)]) == 0


def test_cli_critpath_and_usage_subcommands(tmp_path, capsys):
    from repro.obs.__main__ import main

    rt = make_runtime(num_nodes=2)
    double = rt.remote(lambda x: 2 * x, compute=0.05)

    def driver():
        return rt.get([double.remote(i) for i in range(6)])

    rt.run(driver)
    trace = tmp_path / "run.events.jsonl"
    record_run(rt, str(trace))
    assert main(["critpath", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "Critical-path attribution" in out
    assert main(["critpath", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["makespan"] > 0
    assert sum(summary["categories"].values()) == pytest.approx(
        summary["makespan"]
    )
    assert main(["usage", str(trace), "--bins", "4"]) == 0
    assert "Binding resource over time" in capsys.readouterr().out


# -- stamps and report integration -------------------------------------------


def test_finish_bench_stamps(tmp_path, monkeypatch):
    import benchmarks._harness as harness
    from repro.metrics import ResultTable

    monkeypatch.chdir(tmp_path)
    rt = make_runtime(num_nodes=2)
    noop = rt.remote(lambda: 1, compute=0.01)
    rt.run(lambda: rt.get(noop.remote()))
    table = ResultTable("t", ["variant", "seconds"])
    table.add_row(variant="x", seconds=1.0)
    path = harness.finish_bench("stamped", table, runtime=rt)
    payload = json.loads(path.read_text())
    fp = payload["fingerprint"]
    assert fp["bench"] == "stamped"
    assert fp["sort_scale"] == harness.SORT_SCALE
    assert len(fp["cluster"]) == 2
    assert all(spec["cores"] == 4 for spec in fp["cluster"].values())
    assert payload["critpath"]["categories"]
    assert payload["critpath"]["makespan"] == pytest.approx(
        payload["sim_time_s"]
    )
    # The stamp makes self-comparison pass and cross-config refuse.
    assert compare_benches(payload, payload).ok


def test_phase_table_has_admission_column():
    events = _events(
        (0.0, "job.submit", dict(job="J", tenant="t", name="j")),
        (2.0, "job.admit", dict(job="J")),
        (2.0, "task.submit", dict(task="A", fn="work", returns=["O1"],
                                  deps=[], job="J")),
        (2.5, "task.run", dict(task="A", node="N0", job="J", attempt=1,
                               fn="work")),
        (4.0, "task.finish", dict(task="A", node="N0", job="J")),
    )
    table = RunReport(events).phase_table()
    assert "admission_s" in table.columns
    row = table.find(phase="work")
    assert row["admission_s"] == pytest.approx(2.0)
    assert row["mean_queue_s"] == pytest.approx(0.5)
