"""Golden determinism: the policy-plane refactor is behaviour-preserving.

The digests below were captured from the pre-refactor data plane (the
seed behaviour: placement, spilling, fair-share dispatch, and retry
pacing hard-coded in ``runtime.py``/``scheduler.py``/``spilling.py``).
The default policy stack must reproduce the exact same filtered event
stream -- every placement, every spill write/restore, every retry, at
the same simulated timestamps -- or these tests fail.

The digest deliberately excludes event ``seq``/``cause`` numbers and
any non-digest event kinds: the refactor *adds* ``policy.decision``
events, which renumber the stream without changing behaviour.
"""

import hashlib

from repro.chaos.injector import ChaosInjector
from repro.chaos.spec import FaultKind, matrix_plan
from repro.chaos.harness import (
    default_node_spec,
    expected_output,
    make_inputs,
    submit_variant,
)
from repro.common.units import MB
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.sort import SortJobConfig, run_sort

from tests.conftest import make_runtime

#: The event kinds whose stream defines observable data-plane behaviour:
#: where tasks ran, what spilled and restored, what fell back to disk,
#: and which tasks retried.  ``seq``/``cause`` are excluded on purpose.
DIGEST_KINDS = (
    "task.place",
    "task.park",
    "spill.write.begin",
    "spill.write.end",
    "spill.restore.begin",
    "spill.fallback",
    "task.retry",
    "object.create",
)

GOLDEN_SORT_DIGEST = "6c9ea3eebc9f3616787ca86d3857b36a0ac5a7d35f11246300acbf461acd5e52"
GOLDEN_CHAOS_DIGEST = "85b3dde0667f3fbff2b666047d751dd947b917fce83fb81e88fa092691afdbbf"


def digest_events(events) -> str:
    """A stable digest of the behaviour-defining event stream."""
    lines = []
    for event in events:
        if event.kind not in DIGEST_KINDS:
            continue
        attrs = {k: v for k, v in sorted(event.attrs.items())}
        lines.append(
            f"{event.ts!r}|{event.kind}|{event.node}|{event.job}"
            f"|{event.task}|{event.obj}|{attrs}"
        )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _sort_run(config: RuntimeConfig = None) -> tuple:
    """A fig4c-style fixed-seed in-memory sort with store pressure."""
    rt = make_runtime(num_nodes=3, store_mib=256, config=config)
    result = run_sort(
        rt,
        SortJobConfig(
            variant="push*",
            num_partitions=12,
            partition_bytes=30 * MB,
            virtual=True,
        ),
    )
    assert result.validated
    return digest_events(rt.bus.events), rt


def _chaos_run() -> str:
    """A push shuffle under a node crash: placements, retries, blacklist."""
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(
            retry_policy=RetryPolicy(max_attempts=8),
            blacklist_cooldown_s=5.0,
        ),
    )
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=0))
    inputs = make_inputs(0, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    values = rt.run(driver)
    rt.env.run()  # drain the node restart
    assert tuple(tuple(v) for v in values) == expected_output(0)
    assert rt.bus.events_of("task.retry"), "the crash must force retries"
    return digest_events(rt.bus.events)


def test_sort_digest_matches_pre_refactor_behaviour():
    digest, _rt = _sort_run()
    assert digest == GOLDEN_SORT_DIGEST


def test_chaos_digest_matches_pre_refactor_behaviour():
    assert _chaos_run() == GOLDEN_CHAOS_DIGEST


def test_digest_is_deterministic_across_runs():
    assert _chaos_run() == _chaos_run()


def test_elasticity_merged_but_unused_is_zero_cost():
    """The elasticity plane is free when off: a static-shape run under
    the *default* config (``autoscale_policy="none"``, local spill) is
    event-for-event identical to the pre-elasticity golden stream --
    membership tracking adds no simulation events, no bus records, and
    no digest drift."""
    digest, rt = _sort_run(RuntimeConfig())
    assert digest == GOLDEN_SORT_DIGEST
    assert not any(e.kind == "cluster.membership" for e in rt.bus.events)
    assert rt.counters.get("nodes_added") == 0
    assert rt.counters.get("nodes_removed") == 0
    # Membership still *knows* the static shape, it just never acts.
    assert rt.membership.active_count() == 3
    assert rt.membership.snapshot() == {
        str(nid): "active" for nid in rt.cluster.node_ids
    }
