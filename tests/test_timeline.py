"""Timeline reconstruction and Chrome-trace export."""

import json

import pytest

from repro.common.units import MB
from repro.metrics import (
    chrome_trace_events,
    export_chrome_trace,
    phase_summary,
    task_spans,
)
from repro.metrics.timeline import _assign_lanes
from repro.sort import SortJobConfig, run_sort

from tests.conftest import make_runtime


def _sorted_runtime():
    rt = make_runtime(num_nodes=2)
    result = run_sort(
        rt,
        SortJobConfig(
            variant="push*", num_partitions=6, partition_bytes=4 * MB,
            virtual=True,
        ),
    )
    assert result.validated
    return rt


class TestTaskSpans:
    def test_spans_cover_all_finished_tasks(self):
        rt = _sorted_runtime()
        spans = task_spans(rt)
        assert len(spans) == rt.counters.get("tasks_finished")
        for span in spans:
            assert span["end"] >= span["start"] >= 0
            assert span["queue_delay"] >= 0

    def test_spans_sorted_by_start(self):
        spans = task_spans(_sorted_runtime())
        starts = [s["start"] for s in spans]
        assert starts == sorted(starts)


class TestPhaseSummary:
    def test_summary_has_one_row_per_function(self):
        rt = _sorted_runtime()
        table = phase_summary(rt)
        phases = table.column("phase")
        assert "gen_virtual" in phases
        assert any("push_map" in p for p in phases)
        for row in table.rows:
            assert row["busy_core_s"] > 0
            assert row["last_end"] >= row["first_start"]


class TestLaneAssignment:
    def test_non_overlapping_spans_share_a_lane(self):
        spans = [
            {"start": 0.0, "end": 1.0},
            {"start": 1.0, "end": 2.0},
            {"start": 2.5, "end": 3.0},
        ]
        assert _assign_lanes(spans) == [0, 0, 0]

    def test_overlapping_spans_split_lanes(self):
        spans = [
            {"start": 0.0, "end": 2.0},
            {"start": 1.0, "end": 3.0},
            {"start": 1.5, "end": 1.8},
        ]
        lanes = _assign_lanes(spans)
        assert lanes[0] != lanes[1]
        assert len(set(lanes)) == 3


class TestChromeTrace:
    def test_events_are_valid_trace_format(self):
        rt = _sorted_runtime()
        events = chrome_trace_events(rt)
        tasks = [
            e for e in events
            if e.get("ph") == "X" and e.get("cat") == "task"
        ]
        metas = [e for e in events if e.get("ph") == "M"]
        assert len(metas) == 2  # one per node
        assert len(tasks) == rt.counters.get("tasks_finished")
        for event in tasks:
            assert "job_id" in event["args"]
        for event in tasks:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert isinstance(event["pid"], int)

    def test_export_writes_parseable_json(self, tmp_path):
        rt = _sorted_runtime()
        path = tmp_path / "trace.json"
        count = export_chrome_trace(rt, str(path))
        payload = json.loads(path.read_text())
        assert len([e for e in payload["traceEvents"] if e["ph"] == "X"]) == count
        assert count > 0
