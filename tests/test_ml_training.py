"""ML data loading and training (§3.2.2, §5.2.2, Figs 8-9)."""

import numpy as np
import pytest

from repro.baselines.petastorm import PetastormLoader, windowed_shuffle_order
from repro.common.errors import OutOfMemoryError
from repro.common.rng import seeded_rng
from repro.common.units import MB
from repro.ml import (
    ExoshuffleLoader,
    LocalBatchLoader,
    SGDClassifier,
    SyntheticHiggs,
    T4_LIKE,
    TabularBlock,
    train_distributed,
    train_single_node,
)
from repro.ml.loaders import stage_blocks

from tests.conftest import make_runtime


def small_dataset(n=6000, io_scale=100.0, seed=3):
    return SyntheticHiggs(num_samples=n, seed=seed, io_scale=io_scale)


class TestDataset:
    def test_blocks_partition_all_samples(self):
        data = small_dataset(n=1000)
        blocks = data.training_blocks(7)
        assert sum(b.num_records for b in blocks) == 1000

    def test_storage_order_is_label_clustered(self):
        """The first block must be (almost) single-label -- that is the
        adversarial ordering the experiment depends on."""
        blocks = small_dataset(n=4000).training_blocks(8)
        first = blocks[0].labels
        assert first.mean() < 0.05 or first.mean() > 0.95

    def test_io_scale_inflates_declared_size(self):
        plain = SyntheticHiggs(num_samples=500, io_scale=1.0).training_blocks(1)[0]
        scaled = SyntheticHiggs(num_samples=500, io_scale=50.0).training_blocks(1)[0]
        assert scaled.size_bytes == pytest.approx(50 * plain.size_bytes, rel=0.01)

    def test_generation_deterministic(self):
        a = small_dataset().training_blocks(4)[0]
        b = small_dataset().training_blocks(4)[0]
        assert (a.features == b.features).all()

    def test_block_concat_and_take(self):
        blocks = small_dataset(n=300).training_blocks(3)
        merged = TabularBlock.concat(blocks)
        assert merged.num_records == 300
        taken = merged.take(np.arange(10))
        assert taken.num_records == 10


class TestModel:
    def test_training_reduces_loss_and_learns(self):
        data = small_dataset(n=8000)
        blocks = data.training_blocks(1)
        model = SGDClassifier(num_features=data.num_features)
        rng = seeded_rng(0, "order")
        order = rng.permutation(blocks[0].num_records)
        shuffled = blocks[0].take(order)
        for _ in range(5):
            model.train_block(shuffled.features, shuffled.labels)
        val_x, val_y = data.validation_set()
        assert model.accuracy(val_x, val_y) > 0.75

    def test_param_round_trip_and_average(self):
        model = SGDClassifier(num_features=4)
        params = model.get_params()
        avg = SGDClassifier.average([params, params + 2.0])
        assert np.allclose(avg, params + 1.0)


class TestWindowedOrder:
    def test_window_preserves_multiset(self):
        blocks = small_dataset(n=1000).training_blocks(4)
        rng = seeded_rng(1, "w")
        out = list(windowed_shuffle_order(blocks, 100, rng, 128))
        total = sum(b.num_records for b in out)
        assert total == 1000
        all_in = np.sort(np.concatenate([b.features[:, 0] for b in blocks]))
        all_out = np.sort(np.concatenate([b.features[:, 0] for b in out]))
        assert np.allclose(all_in, all_out)

    def test_small_window_keeps_storage_locality(self):
        """With a tiny window, early output rows come from early blocks."""
        blocks = small_dataset(n=2000).training_blocks(4)
        rng = seeded_rng(2, "w")
        out = list(windowed_shuffle_order(blocks, 10, rng, 500))
        first_labels = out[0].labels
        # Storage order is label-sorted: a tiny window cannot mix labels.
        assert first_labels.mean() < 0.2 or first_labels.mean() > 0.8

    def test_window_too_large_ooms(self):
        rt = make_runtime(num_nodes=1)
        refs = rt.run(
            lambda: stage_blocks(rt, small_dataset(n=500).training_blocks(2))
        )
        with pytest.raises(OutOfMemoryError):
            PetastormLoader(
                rt, refs, window_bytes=100 * MB, buffer_budget_bytes=10 * MB
            )


class TestLoaders:
    def _staged(self, rt, data, num_blocks=8):
        blocks = data.training_blocks(num_blocks)
        return rt.run(lambda: stage_blocks(rt, blocks))

    def test_exoshuffle_epochs_differ_and_conserve(self):
        rt = make_runtime(num_nodes=2)
        data = small_dataset(n=2000)
        refs = self._staged(rt, data)
        loader = ExoshuffleLoader(rt, refs, seed=5)

        def driver():
            e0 = rt.get(loader.submit_epoch(0))
            e1 = rt.get(loader.submit_epoch(1))
            return e0, e1

        e0, e1 = rt.run(driver)
        assert sum(b.num_records for b in e0) == 2000
        assert sum(b.num_records for b in e1) == 2000
        # Different epochs produce different orders.
        assert not np.array_equal(e0[0].features, e1[0].features)

    def test_exoshuffle_epoch_is_well_mixed(self):
        rt = make_runtime(num_nodes=2)
        data = small_dataset(n=4000)
        refs = self._staged(rt, data)
        loader = ExoshuffleLoader(rt, refs, seed=1)
        blocks = rt.run(lambda: rt.get(loader.submit_epoch(0)))
        # Every shuffled block should be label-balanced (global mix).
        for block in blocks:
            assert 0.3 < block.labels.mean() < 0.7

    def test_local_loader_moves_no_data(self):
        rt = make_runtime(num_nodes=2)
        data = small_dataset(n=2000)
        refs = self._staged(rt, data)
        before = rt.cluster.network_bytes_sent
        loader = LocalBatchLoader(rt, refs, seed=2)

        def driver():
            out = loader.submit_epoch(0)
            rt.wait(out, num_returns=len(out))
            return True

        rt.run(driver)
        assert rt.cluster.network_bytes_sent == before

    def test_local_loader_blocks_stay_label_biased(self):
        rt = make_runtime(num_nodes=2)
        data = small_dataset(n=4000)
        refs = self._staged(rt, data)
        loader = LocalBatchLoader(rt, refs, seed=2)
        blocks = rt.run(lambda: rt.get(loader.submit_epoch(0)))
        biased = sum(
            1 for b in blocks if b.labels.mean() < 0.2 or b.labels.mean() > 0.8
        )
        assert biased >= len(blocks) // 2


class TestTraining:
    def test_single_node_training_converges(self):
        rt = make_runtime(num_nodes=1, store_mib=4096)
        data = small_dataset(n=6000, io_scale=50.0)
        refs = rt.run(lambda: stage_blocks(rt, data.training_blocks(6)))
        loader = ExoshuffleLoader(rt, refs, seed=0)
        model = SGDClassifier(num_features=data.num_features)
        result = train_single_node(
            rt, loader, model, data.validation_set(), epochs=6, label="exo"
        )
        assert len(result.epoch_seconds) == 6
        assert result.final_accuracy > 0.75
        assert result.total_seconds > 0

    def test_full_shuffle_beats_partial_on_clustered_data(self):
        data = small_dataset(n=8000, io_scale=20.0)

        def run(loader_cls):
            rt = make_runtime(num_nodes=2, store_mib=4096)
            refs = rt.run(lambda: stage_blocks(rt, data.training_blocks(8)))
            loader = loader_cls(rt, refs, seed=0)
            model = SGDClassifier(num_features=data.num_features, seed=0)
            return train_single_node(
                rt, loader, model, data.validation_set(), epochs=5
            )

        full = run(ExoshuffleLoader)
        partial = run(LocalBatchLoader)
        assert full.final_accuracy > partial.final_accuracy

    def test_distributed_training_runs_on_all_trainers(self):
        rt = make_runtime(num_nodes=4, store_mib=4096)
        data = small_dataset(n=6000, io_scale=20.0)
        refs = rt.run(lambda: stage_blocks(rt, data.training_blocks(8)))
        loader = ExoshuffleLoader(rt, refs, seed=0)
        model = SGDClassifier(num_features=data.num_features)
        result = train_distributed(
            rt,
            loader,
            model,
            data.validation_set(),
            epochs=4,
            trainer_nodes=rt.cluster.node_ids,
        )
        assert len(result.accuracies) == 4
        assert result.final_accuracy > 0.7

    def test_petastorm_slower_per_epoch_than_exoshuffle(self):
        """Fig 8's throughput claim: the single-reader decode-bound loader
        cannot keep up with a loader that shuffles with cluster cores."""
        data = small_dataset(n=6000, io_scale=200.0)
        blocks = data.training_blocks(8)

        rt_exo = make_runtime(num_nodes=1, cores=8, store_mib=4096)
        refs = rt_exo.run(lambda: stage_blocks(rt_exo, blocks))
        exo = train_single_node(
            rt_exo,
            ExoshuffleLoader(rt_exo, refs, seed=0),
            SGDClassifier(num_features=data.num_features),
            data.validation_set(),
            epochs=3,
        )

        rt_pet = make_runtime(num_nodes=1, cores=8, store_mib=4096)
        refs_p = rt_pet.run(lambda: stage_blocks(rt_pet, blocks))
        loader = PetastormLoader(
            rt_pet,
            refs_p,
            window_bytes=sum(b.size_bytes for b in blocks) // 10,
            buffer_budget_bytes=sum(b.size_bytes for b in blocks) // 2,
        )
        record_bytes = blocks[0].size_bytes // blocks[0].num_records
        window_records = loader.window_records(record_bytes)

        def window_order(epoch):
            return list(
                windowed_shuffle_order(
                    blocks, window_records, loader.epoch_rng(epoch), 1000
                )
            )

        pet = train_single_node(
            rt_pet,
            loader,
            SGDClassifier(num_features=data.num_features),
            data.validation_set(),
            epochs=3,
            order_override=window_order,
        )
        assert pet.mean_epoch_seconds > 1.5 * exo.mean_epoch_seconds
