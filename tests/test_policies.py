"""The policy plane: registry contents and placement-policy properties.

The property tests run over *every* registered placement policy, so a
newly registered policy is automatically held to the same contract:
return only (alive) candidates, honour the blacklist when alternatives
exist, and fall through gracefully when all candidates are blacklisted
or the affinity hint is dead.  A chaos-matrix integration test then
checks the same alive-nodes-only invariant end to end under every fault
kind, replaying the event stream against the death/restart timeline.
"""

from typing import List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.harness import (
    default_node_spec,
    expected_output,
    make_inputs,
    submit_variant,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.spec import FaultKind, matrix_plan
from repro.common.ids import NodeId, TaskId
from repro.futures import (
    POLICY_KINDS,
    RetryPolicy,
    Runtime,
    RuntimeConfig,
    available_policies,
    create_policy,
    register_policy,
)
from repro.futures.policies import (
    NodeCandidate,
    PlacementDecision,
    PlacementRequest,
    StagedPlacementPolicy,
)
from repro.futures.policies.registry import _REGISTRY


# -- registry -----------------------------------------------------------------
def test_registry_has_the_builtin_policies():
    names = available_policies()
    assert set(names) == set(POLICY_KINDS)
    assert {"default", "load-only", "random"} <= set(names["placement"])
    assert {"default", "newest-first"} <= set(names["memory"])
    assert {"default", "unfused"} <= set(names["spill"])
    assert {"fifo", "fair-share"} <= set(names["dispatch"])


def test_unknown_policy_name_is_a_typed_error():
    with pytest.raises(ValueError, match="unknown placement policy"):
        create_policy("placement", "nope", RuntimeConfig())
    with pytest.raises(ValueError, match="unknown policy kind"):
        register_policy("steering", "x", lambda config: None)
    with pytest.raises(ValueError, match="unknown spill policy 'nope'"):
        Runtime.create(
            default_node_spec(), 2, config=RuntimeConfig(spill_policy="nope")
        )


def test_custom_policy_registers_and_resolves_through_config():
    class FirstNodePolicy:
        name = "first-node"

        def place(self, request, candidates):
            chosen = candidates[0]
            return PlacementDecision(
                node_id=chosen.node_id,
                stage="first",
                policy=self.name,
                candidates=len(candidates),
            )

    register_policy("placement", "first-node", lambda config: FirstNodePolicy())
    try:
        rt = Runtime.create(
            default_node_spec(),
            2,
            config=RuntimeConfig(placement_policy="first-node"),
        )
        assert rt.policies.placement.name == "first-node"
        double = rt.remote(lambda x: 2 * x)

        def driver():
            return rt.get([double.remote(i) for i in range(4)])

        assert rt.run(driver) == [0, 2, 4, 6]
        places = rt.bus.events_of("policy.decision")
        assert any(
            e.attrs.get("policy") == "placement:first-node" for e in places
        )
    finally:
        del _REGISTRY[("placement", "first-node")]


# -- placement-policy properties ----------------------------------------------
def _placement_policies() -> List[str]:
    return available_policies("placement")["placement"]


def _make_candidates(
    blacklisted: List[bool], loads: List[int], arg_bytes: List[int]
) -> List[NodeCandidate]:
    return [
        NodeCandidate(
            node_id=NodeId(i),
            blacklisted=black,
            load=load / 4.0,
            arg_bytes=bytes_,
        )
        for i, (black, load, bytes_) in enumerate(
            zip(blacklisted, loads, arg_bytes)
        )
    ]


candidate_lists = st.integers(min_value=1, max_value=8).flatmap(
    lambda n: st.tuples(
        st.lists(st.booleans(), min_size=n, max_size=n),
        st.lists(
            st.integers(min_value=0, max_value=12), min_size=n, max_size=n
        ),
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=n,
            max_size=n,
        ),
        st.integers(min_value=0, max_value=2 * n),  # affinity target
        st.booleans(),  # hint set at all?
    )
)


@pytest.mark.parametrize("policy_name", _placement_policies())
@given(data=candidate_lists)
@settings(max_examples=60, deadline=None)
def test_placement_contract(policy_name: str, data) -> None:
    """Every registered placement policy: alive-only, blacklist-aware,
    graceful fall-through."""
    blacklisted, loads, arg_bytes, hint_index, hinted = data
    candidates = _make_candidates(blacklisted, loads, arg_bytes)
    # hint_index beyond the candidate range models a *dead* hinted node.
    affinity: Optional[NodeId] = NodeId(hint_index) if hinted else None
    request = PlacementRequest(
        task_id=TaskId(7), affinity=affinity, job_id=None
    )
    policy = create_policy("placement", policy_name, RuntimeConfig())
    decision = policy.place(request, candidates)

    by_id = {c.node_id: c for c in candidates}
    # Only ever one of the (alive) candidates.
    assert decision.node_id in by_id
    assert decision.candidates == len(candidates)
    chosen = by_id[decision.node_id]
    # Blacklist honoured whenever an alternative exists...
    if chosen.blacklisted and decision.stage != "affinity":
        assert all(c.blacklisted for c in candidates)
    # ...and all-blacklisted pools still place (liveness over hygiene).
    if all(c.blacklisted for c in candidates):
        assert decision.node_id in by_id


@given(data=candidate_lists)
@settings(max_examples=60, deadline=None)
def test_default_placement_affinity_semantics(data) -> None:
    """The default stack honours live hints and falls through dead ones."""
    blacklisted, loads, arg_bytes, hint_index, _ = data
    candidates = _make_candidates(blacklisted, loads, arg_bytes)
    hint = NodeId(hint_index)
    request = PlacementRequest(task_id=TaskId(0), affinity=hint, job_id=None)
    policy = create_policy("placement", "default", RuntimeConfig())
    decision = policy.place(request, candidates)
    survivors = [c for c in candidates if not c.blacklisted] or candidates
    if any(c.node_id == hint for c in survivors):
        # A live, non-blacklisted hinted node is always honoured.
        assert decision.node_id == hint
        assert decision.stage == "affinity"
    else:
        # Dead (or blacklisted-away) hint: soft affinity falls through.
        assert decision.stage != "affinity"
        assert decision.node_id in {c.node_id for c in candidates}


def test_staged_policy_empty_stage_result_is_ignored():
    """A stage that would empty the pool is skipped, not fatal."""

    class EmptyStage:
        name = "empty"

        def apply(self, request, candidates):
            return []

    policy = StagedPlacementPolicy("test", [EmptyStage()])
    candidates = _make_candidates([False, False], [1, 0], [0, 0])
    decision = policy.place(
        PlacementRequest(task_id=TaskId(1), affinity=None, job_id=None),
        candidates,
    )
    assert decision.stage == "fallback"
    assert decision.node_id == NodeId(0)


# -- chaos matrix integration -------------------------------------------------
@pytest.mark.parametrize("kind", list(FaultKind))
def test_placements_target_alive_nodes_across_failure_matrix(kind):
    """Under every chaos fault kind, each task.place lands on a node not
    currently dead (replayed from the event stream in seq order)."""
    seed = 11
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    ChaosInjector(rt, matrix_plan(kind, seed=seed))
    inputs = make_inputs(seed, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    values = rt.run(driver)
    rt.env.run()  # drain restarts
    assert tuple(tuple(v) for v in values) == expected_output(seed)

    dead = set()
    placements = 0
    for event in rt.bus.events:
        if event.kind == "node.death":
            dead.add(event.node)
        elif event.kind == "node.restart":
            dead.discard(event.node)
        elif event.kind == "task.place":
            placements += 1
            assert event.node not in dead, (
                f"{event.kind} seq={event.seq} placed on dead {event.node}"
            )
    assert placements > 0
