"""The layering lint: the policy plane must not import mechanism.

Runs ``tools/check_layering.py`` (the CI step) over the real tree, then
over synthetic violations to prove the lint actually bites.
"""

import importlib.util
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _lint():
    spec = importlib.util.spec_from_file_location(
        "check_layering", REPO / "tools" / "check_layering.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_policy_plane_is_mechanism_free():
    lint = _lint()
    violations = lint.check_tree(REPO / "src" / "repro" / "futures" / "policies")
    assert violations == []


def test_lint_catches_mechanism_imports(tmp_path):
    lint = _lint()
    bad = tmp_path / "rogue.py"
    bad.write_text(
        textwrap.dedent(
            """
            import json
            from repro.common.ids import NodeId
            from repro.futures.runtime import Runtime
            from repro.futures import node_manager
            import repro.simcore
            from .sibling import helper
            """
        )
    )
    violations = lint.check_tree(tmp_path)
    offending = [v.split("imports ")[1].split(" ")[0] for v in violations]
    assert offending == ["'repro.futures.runtime'", "'repro.futures'",
                        "'repro.simcore'"]


def test_registry_covers_every_policy_kind():
    """All declared kinds -- autoscale included -- have a built-in."""
    lint = _lint()
    root = REPO / "src" / "repro" / "futures" / "policies"
    assert lint.check_registry_coverage(root) == []


def test_registry_coverage_catches_missing_kind(tmp_path):
    lint = _lint()
    (tmp_path / "registry.py").write_text(
        textwrap.dedent(
            """
            POLICY_KINDS = ("placement", "autoscale")
            def register_policy(kind, name, factory):
                pass
            register_policy("placement", "default", None)
            """
        )
    )
    violations = lint.check_registry_coverage(tmp_path)
    assert len(violations) == 1 and "'autoscale'" in violations[0]
    # A tree with a registry.py gets the coverage check from main() too.
    assert lint.main([str(tmp_path)]) == 1


def test_streaming_tier_is_not_imported_by_the_core():
    """Nothing in the data-plane core imports ``repro.streaming``."""
    lint = _lint()
    violations = lint.check_streaming_isolation(REPO / "src" / "repro")
    assert violations == []


def test_streaming_isolation_catches_core_imports(tmp_path):
    """A synthetic core module importing the tier is flagged; the tier
    itself and the aggregation app stay exempt."""
    lint = _lint()
    src_root = tmp_path / "src" / "repro"
    for pkg in ("futures", "streaming", "aggregation"):
        (src_root / pkg).mkdir(parents=True)
        (src_root / pkg / "__init__.py").write_text("")
    (src_root / "__init__.py").write_text("")
    (src_root / "futures" / "rogue.py").write_text(
        textwrap.dedent(
            """
            import json
            from repro.streaming import RoundDriver
            import repro.streaming.job
            """
        )
    )
    (src_root / "streaming" / "internal.py").write_text(
        "from repro.streaming.rounds import RoundDriver\n"
    )
    (src_root / "aggregation" / "app.py").write_text(
        "from repro.streaming.rounds import drive_rounds\n"
    )
    violations = lint.check_streaming_isolation(src_root)
    assert len(violations) == 2
    assert all("rogue.py" in v for v in violations)


def test_live_ops_plane_is_not_imported_by_the_data_plane():
    """``repro.futures`` / ``repro.simcore`` / ``repro.shuffle`` never
    import ``repro.obs.live`` -- the observer stays optional."""
    lint = _lint()
    violations = lint.check_live_isolation(REPO / "src" / "repro")
    assert violations == []


def test_live_isolation_catches_data_plane_imports(tmp_path):
    """A synthetic data-plane module importing the live tier is
    flagged; the obs package itself stays exempt."""
    lint = _lint()
    src_root = tmp_path / "src" / "repro"
    for pkg in ("futures", "obs"):
        (src_root / pkg).mkdir(parents=True)
        (src_root / pkg / "__init__.py").write_text("")
    (src_root / "__init__.py").write_text("")
    (src_root / "futures" / "rogue.py").write_text(
        textwrap.dedent(
            """
            import json
            from repro.obs.live import TimeSeriesSampler
            import repro.obs.live.dashboard
            from repro.obs.events import EventBus
            """
        )
    )
    (src_root / "obs" / "cli.py").write_text(
        "from repro.obs.live import LiveDashboard\n"
    )
    violations = lint.check_live_isolation(src_root)
    assert len(violations) == 2
    assert all("rogue.py" in v for v in violations)
    assert all("attach_sampler" in v for v in violations)


def test_lint_main_exit_codes(tmp_path, capsys):
    lint = _lint()
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("from repro.common.ids import NodeId\n")
    assert lint.main([str(clean)]) == 0
    (clean / "bad.py").write_text("from repro.futures.scheduler import Scheduler\n")
    assert lint.main([str(clean)]) == 1
    assert lint.main([str(tmp_path / "missing")]) == 2
    capsys.readouterr()


def test_self_profiler_is_not_imported_by_the_observed_planes():
    """``repro.futures`` / ``repro.simcore`` / ``repro.shuffle`` /
    ``repro.cluster`` never import ``repro.obs.profile`` -- the
    profiler observes by instance shadowing, so the observed planes
    must stay profiler-free (zero cost when off)."""
    lint = _lint()
    violations = lint.check_profile_isolation(REPO / "src" / "repro")
    assert violations == []


def test_plan_layer_isolation_holds_in_the_real_tree():
    """``repro.plan`` imports no mechanism layer, and no mechanism
    layer (futures / simcore / cluster / shuffle, minus the legacy
    ``shuffle.select`` wrapper) imports ``repro.plan``."""
    lint = _lint()
    violations = lint.check_plan_isolation(REPO / "src" / "repro")
    assert violations == []


def test_plan_isolation_catches_both_directions(tmp_path):
    """A synthetic plan module importing the runtime is flagged, as is
    a shuffle variant importing the planner; ``shuffle.select`` and the
    call-site layers (jobs, dataframe) stay exempt."""
    lint = _lint()
    src_root = tmp_path / "src" / "repro"
    for pkg in ("plan", "shuffle", "jobs"):
        (src_root / pkg).mkdir(parents=True)
        (src_root / pkg / "__init__.py").write_text("")
    (src_root / "__init__.py").write_text("")
    (src_root / "plan" / "rogue.py").write_text(
        textwrap.dedent(
            """
            import math
            from repro.common.units import MB
            from repro.plan.profile import ClusterProfile
            from repro.futures.runtime import Runtime
            import repro.shuffle.push
            """
        )
    )
    (src_root / "shuffle" / "push.py").write_text(
        "from repro.plan import ShuffleExpr\n"
    )
    (src_root / "shuffle" / "select.py").write_text(
        "from repro.plan import empirical_variant\n"
    )
    (src_root / "jobs" / "manager.py").write_text(
        "from repro.plan import planner_for_runtime\n"
    )
    violations = lint.check_plan_isolation(src_root)
    assert len(violations) == 3
    assert sum("rogue.py" in v for v in violations) == 2
    assert sum("push.py" in v for v in violations) == 1


def test_profile_isolation_catches_observed_plane_imports(tmp_path):
    """A synthetic simcore module importing the profiler is flagged;
    the obs package (and the bench harness outside src/) stays exempt."""
    lint = _lint()
    src_root = tmp_path / "src" / "repro"
    for pkg in ("simcore", "cluster", "obs"):
        (src_root / pkg).mkdir(parents=True)
        (src_root / pkg / "__init__.py").write_text("")
    (src_root / "__init__.py").write_text("")
    (src_root / "simcore" / "rogue.py").write_text(
        textwrap.dedent(
            """
            import heapq
            from repro.obs.profile import SelfProfiler
            import repro.obs.profile.flame
            """
        )
    )
    (src_root / "cluster" / "rogue.py").write_text(
        "from repro.obs.profile.core import SelfProfiler\n"
    )
    (src_root / "obs" / "cli.py").write_text(
        "from repro.obs.profile import SelfProfiler\n"
    )
    violations = lint.check_profile_isolation(src_root)
    assert len(violations) == 3
    assert all("rogue.py" in v for v in violations)
    assert all("self_profiler" in v for v in violations)
