"""Property-based tests on the object store's accounting invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.ids import NodeId, ObjectId
from repro.futures.object_store import ObjectStore
from repro.simcore import Environment

CAPACITY = 1000


def _check_invariants(store: ObjectStore) -> None:
    sizes = [store.entry_size(oid) for oid in store.objects()]
    assert store.used_bytes == sum(sizes)
    assert 0 <= store.used_bytes <= store.capacity
    assert 0 <= store.pinned_bytes <= store.used_bytes


# Each step: (op_code, object_index, size, primary)
step_strategy = st.tuples(
    st.sampled_from(["alloc", "try_alloc", "free", "pin", "unpin", "demote"]),
    st.integers(min_value=0, max_value=19),
    st.integers(min_value=1, max_value=400),
    st.booleans(),
)


@settings(max_examples=120, deadline=None)
@given(steps=st.lists(step_strategy, min_size=1, max_size=60))
def test_store_accounting_invariants_hold_under_any_sequence(steps):
    env = Environment()
    store = ObjectStore(env, NodeId(0), CAPACITY)
    alloc_counter = 0
    for op, index, size, primary in steps:
        oid = ObjectId(index)
        if op == "alloc":
            alloc_counter += 1
            # Use a unique id for queued allocations to avoid aliasing.
            store.allocate(oid, size, primary=primary)
        elif op == "try_alloc":
            store.try_allocate(oid, size, primary=primary)
        elif op == "free":
            store.free(oid)
        elif op == "pin":
            if store.contains(oid):
                store.pin(oid)
        elif op == "unpin":
            store.unpin(oid)
        elif op == "demote":
            store.demote_to_cached(oid)
        env.run()
        _check_invariants(store)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=30)
)
def test_eviction_of_cached_copies_never_drops_primaries(sizes):
    env = Environment()
    store = ObjectStore(env, NodeId(0), CAPACITY)
    primaries = []
    # Fill half the store with primaries, then churn cached copies through.
    budget = CAPACITY // 2
    used = 0
    for i, size in enumerate(sizes):
        if used + size > budget:
            break
        store.try_allocate(ObjectId(1000 + i), size, primary=True)
        primaries.append(ObjectId(1000 + i))
        used += size
    for i, size in enumerate(sizes):
        store.try_allocate(ObjectId(i), min(size, CAPACITY // 2), primary=False)
    env.run()
    for oid in primaries:
        assert store.contains(oid)
        assert store.is_primary(oid)


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=25),
    pin_mask=st.lists(st.booleans(), min_size=25, max_size=25),
)
def test_spill_candidates_are_unpinned_primaries_within_budget(sizes, pin_mask):
    env = Environment()
    store = ObjectStore(env, NodeId(0), 10_000)
    for i, size in enumerate(sizes):
        store.try_allocate(ObjectId(i), size, primary=(i % 2 == 0), pin=pin_mask[i])
    for target in (1, 100, 10_000):
        candidates = store.spill_candidates(target)
        for oid, size in candidates:
            index = oid.index
            assert index % 2 == 0  # primary
            assert not pin_mask[index]  # unpinned
            assert size == sizes[index]
        # Budget respected modulo one overshooting entry.
        total = sum(size for _, size in candidates)
        if candidates:
            assert total - candidates[-1][1] < target


# -- whole-runtime invariants under seeded chaos ---------------------------

_chaos_case = st.tuples(
    st.sampled_from(["simple", "push", "streaming"]),
    st.sampled_from(
        ["node_crash", "slow_node", "object_loss", "straggler", "link_down"]
    ),
    st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=12, deadline=None)
@given(case=_chaos_case)
def test_invariants_hold_after_any_seeded_chaos_run(case):
    """Property: whatever (variant, fault, seed) chaos throws at a run,
    the quiesced runtime passes the full invariant suite and still
    produces the oracle output."""
    from repro.chaos import FaultKind, expected_output, matrix_plan, run_chaos_shuffle

    variant, kind_value, seed = case
    plan = matrix_plan(FaultKind(kind_value), seed=seed)
    report = run_chaos_shuffle(variant, plan, seed=seed)
    assert report.violations == []
    assert report.output == expected_output(seed)
