"""Error types and ObjectRef reference semantics."""

import gc

import pytest

from repro.common.errors import (
    LineageReconstructionError,
    ObjectLostError,
    OutOfMemoryError,
    ReproError,
    SchedulingError,
    TaskExecutionError,
)
from repro.common.ids import ObjectId, TaskId
from repro.futures.refs import ObjectRef, make_ref

from tests.conftest import make_runtime


class TestErrors:
    def test_hierarchy(self):
        for exc_type in (
            OutOfMemoryError,
            ObjectLostError,
            TaskExecutionError,
            SchedulingError,
            LineageReconstructionError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_object_lost_message(self):
        error = ObjectLostError(ObjectId(7), "gone fishing")
        assert "O00007" in str(error)
        assert "gone fishing" in str(error)
        assert error.object_id == ObjectId(7)

    def test_task_execution_carries_cause(self):
        cause = ValueError("inner")
        error = TaskExecutionError(TaskId(3), cause)
        assert error.cause is cause
        assert "T00003" in str(error)


class TestObjectRefSemantics:
    def test_equality_and_hash_by_object_id(self):
        a = ObjectRef(ObjectId(1))
        b = ObjectRef(ObjectId(1))
        c = ObjectRef(ObjectId(2))
        assert a == b and a != c
        assert len({a, b, c}) == 2

    def test_release_is_idempotent(self):
        calls = []
        ref = ObjectRef(ObjectId(5), release=calls.append)
        ref.release()
        ref.release()
        assert calls == [ObjectId(5)]

    def test_del_releases(self):
        calls = []
        ref = ObjectRef(ObjectId(6), release=calls.append)
        del ref
        gc.collect()
        assert calls == [ObjectId(6)]

    def test_make_ref_counts_against_runtime(self):
        rt = make_runtime(num_nodes=1)
        oid = rt.ids.next_object_id()
        rt.directory.register(oid, creator=None)
        ref1 = make_ref(rt, oid)
        ref2 = make_ref(rt, oid)
        assert rt.directory.get(oid).refcount == 2
        ref1.release()
        assert rt.directory.get(oid).refcount == 1
        ref2.release()
        # Refcount zero: the record was evicted and dropped.
        assert rt.directory.maybe_get(oid) is None

    def test_dangling_ref_after_runtime_gc_is_harmless(self):
        rt = make_runtime(num_nodes=1)
        oid = rt.ids.next_object_id()
        rt.directory.register(oid, creator=None)
        ref = make_ref(rt, oid)
        del rt
        gc.collect()
        ref.release()  # weakref target gone; must not raise
