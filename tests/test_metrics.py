"""Unit tests for counters, histograms, time series, and result tables."""

import pytest

from repro.metrics import Counters, Histogram, ResultTable, TimeSeries


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("bytes", 10)
        c.add("bytes", 5)
        assert c.get("bytes") == 15
        assert c["bytes"] == 15

    def test_missing_is_zero(self):
        assert Counters().get("nope") == 0.0

    def test_default_increment(self):
        c = Counters()
        c.add("events")
        c.add("events")
        assert c.get("events") == 2

    def test_as_dict_snapshot(self):
        c = Counters()
        c.add("x", 1)
        snapshot = c.as_dict()
        c.add("x", 1)
        assert snapshot == {"x": 1}

    def test_iteration(self):
        c = Counters()
        c.add("a")
        c.add("b")
        assert sorted(c) == ["a", "b"]

    def test_snapshot_is_a_copy(self):
        c = Counters()
        c.add("x", 2)
        snap = c.snapshot()
        c.add("x", 3)
        assert snap == {"x": 2}
        assert c.get("x") == 5

    def test_reset_returns_and_zeroes(self):
        c = Counters()
        c.add("x", 7)
        c.add("y", 1)
        before = c.reset()
        assert before == {"x": 7, "y": 1}
        assert c.get("x") == 0.0
        assert c.snapshot() == {}

    def test_snapshot_reset_interval_pattern(self):
        c = Counters()
        c.add("ops", 3)
        c.reset()
        c.add("ops", 4)
        assert c.reset() == {"ops": 4}


class TestHistogram:
    def test_empty_histogram_is_zeroed(self):
        h = Histogram("empty")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.p50 == 0.0
        assert h.min == 0.0 and h.max == 0.0
        assert len(h) == 0

    def test_single_value(self):
        h = Histogram()
        h.record(42.0)
        for q in (0, 50, 95, 99, 100):
            assert h.percentile(q) == 42.0
        assert h.mean == 42.0

    def test_exact_percentiles_interpolate(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.record(v)
        assert h.p50 == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.p95 == pytest.approx(95.05)
        assert h.p99 == pytest.approx(99.01)
        assert h.p999 == pytest.approx(99.901)

    def test_p999_separates_the_tail(self):
        """p999 must resolve a 1-in-1000 outlier that p99 smooths over."""
        h = Histogram()
        for _ in range(999):
            h.record(1.0)
        h.record(1000.0)
        assert h.p99 == pytest.approx(1.0)
        assert h.p999 > 1.0
        assert h.percentile(100) == 1000.0
        # Matches numpy's linear-interpolation definition exactly.
        import numpy as np

        values = [1.0] * 999 + [1000.0]
        assert h.p999 == pytest.approx(
            float(np.percentile(values, 99.9)), rel=1e-12
        )

    def test_record_order_irrelevant(self):
        a, b = Histogram(), Histogram()
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            a.record(v)
        for v in sorted(values):
            b.record(v)
        assert a.snapshot() == b.snapshot()

    def test_percentile_out_of_range_rejected(self):
        h = Histogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_snapshot_keys(self):
        h = Histogram()
        h.record(1.0)
        h.record(3.0)
        snap = h.snapshot()
        assert snap["count"] == 2.0
        assert snap["mean"] == 2.0
        assert snap["min"] == 1.0 and snap["max"] == 3.0
        assert set(snap) == {
            "count", "mean", "min", "max", "p50", "p95", "p99", "p999",
        }

    def test_merge_folds_samples(self):
        a, b = Histogram(), Histogram()
        a.record(1.0)
        b.record(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == 2.0

    def test_records_after_percentile_read(self):
        h = Histogram()
        h.record(10.0)
        assert h.p50 == 10.0  # caches the sorted view
        h.record(20.0)
        assert h.p50 == 15.0  # cache invalidated by the new sample


class TestTimeSeries:
    def test_record_and_lookup(self):
        ts = TimeSeries("progress")
        ts.record(0.0, 0.0)
        ts.record(5.0, 0.5)
        ts.record(10.0, 1.0)
        assert ts.value_at(7.0) == 0.5
        assert ts.value_at(10.0) == 1.0

    def test_rejects_time_going_backwards(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_lookup_before_first_sample_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.value_at(1.0)

    def test_first_time_reaching(self):
        ts = TimeSeries()
        ts.record(1.0, 0.2)
        ts.record(2.0, 0.6)
        ts.record(3.0, 0.9)
        assert ts.first_time_reaching(0.5) == 2.0
        assert ts.first_time_reaching(0.95) == float("inf")

    def test_accessors(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        assert ts.times == [1.0]
        assert ts.values == [10.0]
        assert len(ts) == 1


class TestResultTable:
    def test_add_and_find(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row(a=1, b="x")
        t.add_row(a=2, b="y")
        assert t.find(a=2)["b"] == "y"
        assert t.find(a=3) is None
        assert len(t) == 2

    def test_unknown_column_rejected(self):
        t = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(zzz=1)
        with pytest.raises(ValueError):
            t.column("zzz")

    def test_column_extraction_with_missing(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row(a=1)
        assert t.column("b") == [None]

    def test_render_contains_everything(self):
        t = ResultTable("My Title", ["name", "value"])
        t.add_row(name="alpha", value=3.14159)
        text = t.render()
        assert "My Title" in text
        assert "alpha" in text
        assert "3.14" in text

    def test_render_empty_table(self):
        t = ResultTable("Empty", ["col"])
        assert "Empty" in t.render()
