"""Unit tests for counters, time series, and result tables."""

import pytest

from repro.metrics import Counters, ResultTable, TimeSeries


class TestCounters:
    def test_add_and_get(self):
        c = Counters()
        c.add("bytes", 10)
        c.add("bytes", 5)
        assert c.get("bytes") == 15
        assert c["bytes"] == 15

    def test_missing_is_zero(self):
        assert Counters().get("nope") == 0.0

    def test_default_increment(self):
        c = Counters()
        c.add("events")
        c.add("events")
        assert c.get("events") == 2

    def test_as_dict_snapshot(self):
        c = Counters()
        c.add("x", 1)
        snapshot = c.as_dict()
        c.add("x", 1)
        assert snapshot == {"x": 1}

    def test_iteration(self):
        c = Counters()
        c.add("a")
        c.add("b")
        assert sorted(c) == ["a", "b"]


class TestTimeSeries:
    def test_record_and_lookup(self):
        ts = TimeSeries("progress")
        ts.record(0.0, 0.0)
        ts.record(5.0, 0.5)
        ts.record(10.0, 1.0)
        assert ts.value_at(7.0) == 0.5
        assert ts.value_at(10.0) == 1.0

    def test_rejects_time_going_backwards(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_lookup_before_first_sample_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.value_at(1.0)

    def test_first_time_reaching(self):
        ts = TimeSeries()
        ts.record(1.0, 0.2)
        ts.record(2.0, 0.6)
        ts.record(3.0, 0.9)
        assert ts.first_time_reaching(0.5) == 2.0
        assert ts.first_time_reaching(0.95) == float("inf")

    def test_accessors(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        assert ts.times == [1.0]
        assert ts.values == [10.0]
        assert len(ts) == 1


class TestResultTable:
    def test_add_and_find(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row(a=1, b="x")
        t.add_row(a=2, b="y")
        assert t.find(a=2)["b"] == "y"
        assert t.find(a=3) is None
        assert len(t) == 2

    def test_unknown_column_rejected(self):
        t = ResultTable("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row(zzz=1)
        with pytest.raises(ValueError):
            t.column("zzz")

    def test_column_extraction_with_missing(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row(a=1)
        assert t.column("b") == [None]

    def test_render_contains_everything(self):
        t = ResultTable("My Title", ["name", "value"])
        t.add_row(name="alpha", value=3.14159)
        text = t.render()
        assert "My Title" in text
        assert "alpha" in text
        assert "3.14" in text

    def test_render_empty_table(self):
        t = ResultTable("Empty", ["col"])
        assert "Empty" in t.render()
